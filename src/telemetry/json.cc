#include "telemetry/json.h"

#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace barb::telemetry {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BARB_ASSERT(!first_.empty());
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BARB_ASSERT(!first_.empty());
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view text) {
  separate();
  out_ += text;
  return *this;
}

void write_metric(JsonWriter& w, const MetricRegistry::Entry& entry) {
  w.begin_object();
  w.key("name").value(entry.id.name);
  w.key("labels").value(entry.id.labels);
  w.key("kind").value(to_string(entry.kind));
  w.key("value").value(entry.sample());
  if (entry.kind == MetricKind::kHistogram && entry.histogram) {
    const Histogram& h = *entry.histogram;
    w.key("count").value(h.count());
    w.key("mean").value(h.mean());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("p50").value(h.quantile(0.50));
    w.key("p90").value(h.quantile(0.90));
    w.key("p99").value(h.quantile(0.99));
    w.key("buckets").begin_array();
    h.for_each_bucket([&](std::uint64_t lo, std::uint64_t hi, std::uint64_t c) {
      w.begin_array().value(lo).value(hi).value(c).end_array();
    });
    w.end_array();
  }
  w.end_object();
}

std::string registry_to_json(const MetricRegistry& registry) {
  JsonWriter w;
  w.begin_object();
  w.key("metrics").begin_array();
  registry.for_each([&](const MetricRegistry::Entry& entry) { write_metric(w, entry); });
  w.end_array();
  w.end_object();
  return w.str();
}

void write_series(JsonWriter& w, const ProbeSeries& series) {
  w.begin_object();
  w.key("metric").value(series.id.name);
  w.key("labels").value(series.id.labels);
  w.key("kind").value(to_string(series.kind));
  w.key("values").begin_array();
  for (double v : series.values) w.value(v);
  w.end_array();
  w.end_object();
}

void write_recording(JsonWriter& w, const ProbeRecording& recording) {
  w.begin_object();
  w.key("interval_s").value(recording.interval_s);
  w.key("t").begin_array();
  for (double t : recording.timestamps_s) w.value(t);
  w.end_array();
  w.key("series").begin_array();
  for (const auto& s : recording.series) write_series(w, s);
  w.end_array();
  w.end_object();
}

std::string recording_to_json(const ProbeRecording& recording) {
  JsonWriter w;
  write_recording(w, recording);
  return w.str();
}

}  // namespace barb::telemetry
