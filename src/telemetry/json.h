// Minimal streaming JSON writer plus exporters for registry snapshots and
// probe recordings. No external dependency; output is deterministic: keys
// come out in registry (sorted) order and doubles are formatted by one
// fixed rule, so same-seed runs serialize byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/probe.h"
#include "telemetry/registry.h"

namespace barb::telemetry {

// Deterministic double formatting: integral values (|v| < 1e15) print with
// no fraction, everything else with %.12g. NaN/inf become null.
std::string format_double(double v);

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& raw(std::string_view text);  // pre-encoded JSON fragment

  const std::string& str() const { return out_; }

 private:
  void separate();

  std::string out_;
  // One flag per open scope: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

// One metric entry as a JSON object: {"name":..,"labels":..,"kind":..,
// "value":..} with histogram summaries (count/mean/min/max/p50/p90/p99)
// and non-empty buckets for histogram entries.
void write_metric(JsonWriter& w, const MetricRegistry::Entry& entry);

// Full registry snapshot: {"metrics": [ ... ]}.
std::string registry_to_json(const MetricRegistry& registry);

// One probe series as {"metric":..,"labels":..,"kind":..,"values":[..]}.
void write_series(JsonWriter& w, const ProbeSeries& series);

// Full recording: {"interval_s":..,"t":[..],"series":[..]}.
void write_recording(JsonWriter& w, const ProbeRecording& recording);
std::string recording_to_json(const ProbeRecording& recording);

}  // namespace barb::telemetry
