#include "telemetry/probe.h"

#include "util/assert.h"

namespace barb::telemetry {

const ProbeSeries* ProbeRecording::find(const std::string& name,
                                        const std::string& labels) const {
  for (const auto& s : series) {
    if (s.id.name == name && s.id.labels == labels) return &s;
  }
  return nullptr;
}

TimeSeriesProbe::TimeSeriesProbe(sim::Simulation& sim, MetricRegistry& registry,
                                 sim::Duration interval)
    : sim_(sim), registry_(registry), interval_(interval) {
  BARB_ASSERT_MSG(interval.ns() > 0, "probe interval must be positive");
  recording_.interval_s = interval.to_seconds();
}

void TimeSeriesProbe::start() {
  if (running_) return;
  running_ = true;
  sample();
  // One slab record carries the whole recurrence; stop() cancels it. Pinned
  // to the global control scheduler: with a parallel engine attached the
  // sample callback reads cross-shard state (link counters, pool gauges), so
  // it must run between shard segments at global quiescence — which the
  // engine guarantees for control-scheduler events. Serial runs are
  // unaffected (schedule_every_global == schedule_every there).
  next_ = sim_.schedule_every_global(interval_, [this] { sample(); });
}

void TimeSeriesProbe::stop() {
  running_ = false;
  next_.cancel();
}

void TimeSeriesProbe::sample() {
  const std::size_t n = recording_.timestamps_s.size();
  recording_.timestamps_s.push_back(sim_.now().to_seconds());
  registry_.for_each([&](const MetricRegistry::Entry& entry) {
    auto [it, inserted] = series_index_.try_emplace(entry.id, recording_.series.size());
    if (inserted) {
      ProbeSeries s;
      s.id = entry.id;
      s.kind = entry.kind;
      // Late registration: pad history so all series stay aligned.
      s.values.assign(n, 0.0);
      recording_.series.push_back(std::move(s));
    }
    recording_.series[it->second].values.push_back(entry.sample());
  });
}

}  // namespace barb::telemetry
