// Log-linear histogram: power-of-two major buckets, each split into eight
// linear sub-buckets (HdrHistogram's layout in miniature).
//
// This generalizes util/histogram.h's pure power-of-two LatencyHistogram:
// constant memory (496 buckets covers the full uint64 range), but relative
// error within a bucket is bounded by 1/8 instead of 2x, which makes the
// reported quantiles usable for regression tracking. Values are unitless;
// the metric name carries the unit (rule of the house: "_ns", "_bytes").
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace barb::telemetry {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 8
  // Values 0..7 are exact; above that, 8 sub-buckets per power of two up to
  // 2^63: 8 + (63 - 3) * 8 + 8 = 496 buckets.
  static constexpr int kNumBuckets = 496;

  void record(std::uint64_t value) {
    ++counts_[index_of(value)];
    ++count_;
    sum_ += static_cast<double>(value);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  // Convenience for floating-point samples; negatives clamp to zero.
  void record_double(double value) {
    if (value < 0) value = 0;
    record(static_cast<std::uint64_t>(std::llround(value)));
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  // Quantile estimate, q in [0, 1]; linear interpolation inside the bucket,
  // clamped to the exact observed [min, max].
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    double cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const double c = static_cast<double>(counts_[static_cast<std::size_t>(i)]);
      if (c == 0) continue;
      if (cum + c >= target) {
        const double frac = c == 0 ? 0.0 : (target - cum) / c;
        const double lo = static_cast<double>(bucket_lower(i));
        const double hi = static_cast<double>(bucket_upper(i));
        const double v = lo + frac * (hi - lo);
        return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
      }
      cum += c;
    }
    return static_cast<double>(max_);
  }

  void clear() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
  }

  // Visits every non-empty bucket as (lower, upper, count), ascending.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (int i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
      if (c != 0) fn(bucket_lower(i), bucket_upper(i), c);
    }
  }

  static int index_of(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int exponent = 63 - __builtin_clzll(value);
    const std::uint64_t sub =
        (value >> (exponent - kSubBucketBits)) - kSubBuckets;  // 0..7
    return static_cast<int>(kSubBuckets) +
           (exponent - kSubBucketBits) * static_cast<int>(kSubBuckets) +
           static_cast<int>(sub);
  }

  static std::uint64_t bucket_lower(int index) {
    if (index < static_cast<int>(kSubBuckets)) return static_cast<std::uint64_t>(index);
    const int block = (index - static_cast<int>(kSubBuckets)) / static_cast<int>(kSubBuckets);
    const int sub = (index - static_cast<int>(kSubBuckets)) % static_cast<int>(kSubBuckets);
    return (kSubBuckets + static_cast<std::uint64_t>(sub)) << block;
  }

  static std::uint64_t bucket_upper(int index) {
    if (index < static_cast<int>(kSubBuckets)) return static_cast<std::uint64_t>(index) + 1;
    const int block = (index - static_cast<int>(kSubBuckets)) / static_cast<int>(kSubBuckets);
    return bucket_lower(index) + (1ull << block);
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace barb::telemetry
