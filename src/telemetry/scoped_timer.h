// Sim-time latency timers feeding telemetry histograms.
//
// ScopedTimer measures a synchronous span (RAII); LatencySpan measures an
// event-driven span that starts in one callback and ends in another (queue
// wait, request round-trip). Both record integer nanoseconds, so recorded
// distributions are deterministic for seeded runs.
#pragma once

#include "sim/simulation.h"
#include "sim/time.h"
#include "telemetry/histogram.h"

namespace barb::telemetry {

class ScopedTimer {
 public:
  ScopedTimer(sim::Simulation& sim, Histogram& hist)
      : sim_(sim), hist_(hist), start_(sim.now()) {}
  ~ScopedTimer() {
    hist_.record(static_cast<std::uint64_t>((sim_.now() - start_).ns()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  sim::Simulation& sim_;
  Histogram& hist_;
  sim::TimePoint start_;
};

// Manual start/finish pair for spans that cross scheduler callbacks.
class LatencySpan {
 public:
  explicit LatencySpan(sim::TimePoint start) : start_(start) {}

  sim::TimePoint start() const { return start_; }

  void finish(sim::TimePoint now, Histogram& hist) const {
    hist.record(static_cast<std::uint64_t>((now - start_).ns()));
  }

 private:
  sim::TimePoint start_;
};

}  // namespace barb::telemetry
