// Metric primitives for the telemetry subsystem.
//
// Three kinds, mirroring the usual observability vocabulary:
//   counter   — monotonically increasing count (frames, drops, bytes)
//   gauge     — instantaneous value that can move both ways (queue depth)
//   histogram — distribution of recorded values (service latency)
//
// Components keep their existing cheap stats structs; the registry samples
// them through callbacks, so the hot path pays nothing it was not already
// paying. Registry-owned Counter/Histogram objects exist for metrics that
// have no pre-existing struct field.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace barb::telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

// Identity of one metric: a dotted name plus a canonical label string
// ("host=target,port=3"). Two metrics with the same name but different
// labels are distinct series.
struct MetricId {
  std::string name;
  std::string labels;

  bool operator==(const MetricId&) const = default;
  bool operator<(const MetricId& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
};

// Registry-owned monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Callback sampling the current value of a metric owned elsewhere. Sampled
// on probe ticks and exports only — never on the packet path.
using Sampler = std::function<double()>;

// Joins two canonical label fragments, tolerating empty sides.
inline std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

}  // namespace barb::telemetry
