// Machine-readable bench artifacts: every bench binary emits one
// BENCH_<figure>.json with a stable schema so the repo's perf trajectory is
// diffable across commits.
//
// Schema "barb-bench-v1" (validated by scripts/check_bench_json.py):
// {
//   "schema": "barb-bench-v1",
//   "figure": "<binary name>",
//   "meta": { "mode": "fast|full", "window_s": .., "repetitions": .., ... },
//   "points": [ {"series": "<curve>", "x": .., "y": .., "stddev": ..?} ],
//   "timelines": [
//     { "scenario": "<label>",
//       "recording": { "interval_s": .., "t": [..],
//                      "series": [ {"metric","labels","kind","values"} ] } }
//   ]
// }
//
// `points` are summary scalars (one per table cell); `timelines` are
// sim-time series captured by a TimeSeriesProbe. Meta keys keep insertion
// order, and everything else is emitted in deterministic order, so two
// same-seed runs write byte-identical files.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/probe.h"

namespace barb::telemetry {

struct BenchPoint {
  std::string series;
  double x = 0;
  double y = 0;
  std::optional<double> stddev;
};

class BenchArtifact {
 public:
  explicit BenchArtifact(std::string figure) : figure_(std::move(figure)) {}

  const std::string& figure() const { return figure_; }
  std::string filename() const { return "BENCH_" + figure_ + ".json"; }

  void set_meta(const std::string& key, const std::string& value);
  void set_meta(const std::string& key, double value);

  void add_point(const std::string& series, double x, double y,
                 std::optional<double> stddev = std::nullopt);
  void add_recording(const std::string& scenario, ProbeRecording recording);

  std::size_t num_points() const { return points_.size(); }
  std::size_t num_timelines() const { return timelines_.size(); }

  std::string to_json() const;

  // Writes filename() under `dir`; returns the full path, or "" on failure.
  std::string write_to(const std::string& dir) const;

 private:
  struct Timeline {
    std::string scenario;
    ProbeRecording recording;
  };

  std::string figure_;
  // (key, pre-encoded JSON value); insertion order preserved, last set wins.
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<BenchPoint> points_;
  std::vector<Timeline> timelines_;

  void set_meta_raw(const std::string& key, std::string encoded);
};

}  // namespace barb::telemetry
