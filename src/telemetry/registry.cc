#include "telemetry/registry.h"

#include "util/assert.h"

namespace barb::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double MetricRegistry::Entry::sample() const {
  switch (kind) {
    case MetricKind::kCounter:
      if (owned_counter) return static_cast<double>(owned_counter->value());
      return sampler ? sampler() : 0.0;
    case MetricKind::kGauge:
      return sampler ? sampler() : 0.0;
    case MetricKind::kHistogram:
      return histogram ? static_cast<double>(histogram->count()) : 0.0;
  }
  return 0.0;
}

MetricRegistry::Entry& MetricRegistry::get_or_create(const std::string& name,
                                                     const std::string& labels,
                                                     MetricKind kind) {
  MetricId id{name, labels};
  auto [it, inserted] = entries_.try_emplace(id);
  Entry& e = it->second;
  if (inserted) {
    e.id = std::move(id);
    e.kind = kind;
  } else {
    BARB_ASSERT_MSG(e.kind == kind, "metric re-registered with a different kind");
  }
  return e;
}

Counter& MetricRegistry::counter(const std::string& name, const std::string& labels) {
  Entry& e = get_or_create(name, labels, MetricKind::kCounter);
  if (!e.owned_counter) {
    BARB_ASSERT_MSG(!e.sampler, "metric already registered as a sampled counter");
    e.owned_counter = std::make_unique<Counter>();
  }
  return *e.owned_counter;
}

void MetricRegistry::counter_fn(const std::string& name, const std::string& labels,
                                Sampler fn) {
  Entry& e = get_or_create(name, labels, MetricKind::kCounter);
  BARB_ASSERT_MSG(!e.owned_counter, "metric already registered as an owned counter");
  e.sampler = std::move(fn);
}

void MetricRegistry::gauge(const std::string& name, const std::string& labels,
                           Sampler fn) {
  Entry& e = get_or_create(name, labels, MetricKind::kGauge);
  e.sampler = std::move(fn);
}

Histogram& MetricRegistry::histogram(const std::string& name, const std::string& labels) {
  Entry& e = get_or_create(name, labels, MetricKind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

const MetricRegistry::Entry* MetricRegistry::find(const std::string& name,
                                                  const std::string& labels) const {
  auto it = entries_.find(MetricId{name, labels});
  return it == entries_.end() ? nullptr : &it->second;
}

double MetricRegistry::value(const std::string& name, const std::string& labels) const {
  const Entry* e = find(name, labels);
  return e == nullptr ? 0.0 : e->sample();
}

}  // namespace barb::telemetry
