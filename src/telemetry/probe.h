// TimeSeriesProbe: samples every registered metric on a fixed sim-clock
// interval, producing the time-series half of a bench artifact.
//
// Determinism contract: sampling runs through the scheduler at exact
// integer-nanosecond instants and iterates the registry in sorted order, so
// two runs of the same seeded simulation produce byte-identical recordings.
// Metrics registered after the probe has started join the recording with
// zero-padded history so every series stays aligned with `timestamps_s`.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "telemetry/metric.h"
#include "telemetry/registry.h"

namespace barb::telemetry {

struct ProbeSeries {
  MetricId id;
  MetricKind kind = MetricKind::kGauge;
  std::vector<double> values;  // aligned with ProbeRecording::timestamps_s
};

struct ProbeRecording {
  double interval_s = 0;
  std::vector<double> timestamps_s;
  std::vector<ProbeSeries> series;

  const ProbeSeries* find(const std::string& name, const std::string& labels = "") const;
};

class TimeSeriesProbe {
 public:
  TimeSeriesProbe(sim::Simulation& sim, MetricRegistry& registry,
                  sim::Duration interval);
  ~TimeSeriesProbe() { stop(); }

  TimeSeriesProbe(const TimeSeriesProbe&) = delete;
  TimeSeriesProbe& operator=(const TimeSeriesProbe&) = delete;

  // Takes the first sample immediately, then one every interval until stop().
  void start();
  void stop();
  bool running() const { return running_; }

  sim::Duration interval() const { return interval_; }
  const ProbeRecording& recording() const { return recording_; }

 private:
  void sample();

  sim::Simulation& sim_;
  MetricRegistry& registry_;
  sim::Duration interval_;
  bool running_ = false;
  sim::EventHandle next_;
  ProbeRecording recording_;
  std::map<MetricId, std::size_t> series_index_;
};

}  // namespace barb::telemetry
