#include "telemetry/artifact.h"

#include <cstdio>

#include "telemetry/json.h"

namespace barb::telemetry {

void BenchArtifact::set_meta_raw(const std::string& key, std::string encoded) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(encoded);
      return;
    }
  }
  meta_.emplace_back(key, std::move(encoded));
}

void BenchArtifact::set_meta(const std::string& key, const std::string& value) {
  set_meta_raw(key, "\"" + json_escape(value) + "\"");
}

void BenchArtifact::set_meta(const std::string& key, double value) {
  set_meta_raw(key, format_double(value));
}

void BenchArtifact::add_point(const std::string& series, double x, double y,
                              std::optional<double> stddev) {
  points_.push_back(BenchPoint{series, x, y, stddev});
}

void BenchArtifact::add_recording(const std::string& scenario,
                                  ProbeRecording recording) {
  timelines_.push_back(Timeline{scenario, std::move(recording)});
}

std::string BenchArtifact::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("barb-bench-v1");
  w.key("figure").value(figure_);
  w.key("meta").begin_object();
  for (const auto& [k, encoded] : meta_) w.key(k).raw(encoded);
  w.end_object();
  w.key("points").begin_array();
  for (const auto& p : points_) {
    w.begin_object();
    w.key("series").value(p.series);
    w.key("x").value(p.x);
    w.key("y").value(p.y);
    if (p.stddev) w.key("stddev").value(*p.stddev);
    w.end_object();
  }
  w.end_array();
  w.key("timelines").begin_array();
  for (const auto& t : timelines_) {
    w.begin_object();
    w.key("scenario").value(t.scenario);
    w.key("recording");
    write_recording(w, t.recording);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BenchArtifact::write_to(const std::string& dir) const {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path += '/';
  path += filename();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool nl_ok = std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (written != json.size() || !nl_ok) return "";
  return path;
}

}  // namespace barb::telemetry
