// MetricRegistry: the one place all simulated components hang their
// observables, keyed by (name, labels).
//
// Design rules:
//  * Registration is cheap and idempotent: asking for an existing
//    counter/histogram returns the same object; re-registering a sampler
//    replaces it.
//  * Iteration order is deterministic (sorted by name, then labels) — the
//    probe and the JSON exporter depend on this for byte-identical output
//    across same-seed runs.
//  * Lifetime: samplers capture pointers into live components. Declare the
//    registry BEFORE the components it observes (so it is destroyed after
//    them nowhere matters — it must simply not be *sampled* after a
//    component it references has died).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "telemetry/histogram.h"
#include "telemetry/metric.h"

namespace barb::telemetry {

class MetricRegistry {
 public:
  struct Entry {
    MetricId id;
    MetricKind kind = MetricKind::kGauge;
    std::unique_ptr<Counter> owned_counter;  // kCounter, registry-owned
    Sampler sampler;                         // kCounter (sampled) or kGauge
    std::unique_ptr<Histogram> histogram;    // kHistogram

    // Current scalar value: counter value, gauge sample, histogram count.
    double sample() const;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registry-owned monotonic counter (created on first use).
  Counter& counter(const std::string& name, const std::string& labels = "");

  // Counter whose value lives in an existing stats struct; `fn` samples it.
  void counter_fn(const std::string& name, const std::string& labels, Sampler fn);

  // Instantaneous gauge sampled through `fn`.
  void gauge(const std::string& name, const std::string& labels, Sampler fn);

  // Registry-owned histogram (created on first use).
  Histogram& histogram(const std::string& name, const std::string& labels = "");

  const Entry* find(const std::string& name, const std::string& labels = "") const;
  // Scalar value of a registered metric; 0 if absent.
  double value(const std::string& name, const std::string& labels = "") const;

  std::size_t size() const { return entries_.size(); }

  // Deterministic (sorted) iteration over all entries.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, entry] : entries_) fn(entry);
  }

 private:
  Entry& get_or_create(const std::string& name, const std::string& labels,
                       MetricKind kind);

  std::map<MetricId, Entry> entries_;
};

}  // namespace barb::telemetry
