// Deterministic link fault injection.
//
// A FaultInjector sits on the transmit side of one LinkPort and perturbs the
// wire transit of every frame that port serializes: i.i.d. loss, burst loss
// via a 2-state Gilbert–Elliott chain, bit corruption, duplication, latency
// jitter, and reordering (a chosen frame is held back so later frames
// overtake it). The injector draws from its OWN sim::Random stream, seeded
// explicitly by the owner (conventionally derived from the experiment point
// seed plus the port index), so a scenario replays byte-identically from its
// seed and is independent of worker count, scheduler backend, and whatever
// else consumes the Simulation's shared RNG.
//
// A port with no injector attached takes the exact pre-fault code path and
// performs zero RNG draws — figure artifacts are unchanged unless a profile
// is explicitly enabled.
#pragma once

#include <cstdint>
#include <string>

#include "link/link.h"
#include "net/packet.h"
#include "sim/random.h"
#include "sim/time.h"
#include "telemetry/registry.h"

namespace barb::link {

struct FaultProfile {
  // Independent per-frame loss probability.
  double loss = 0.0;
  // Probability a delivered frame is delivered twice (the copy arrives one
  // frame-time after the original, like a duplicated wire transmission).
  double duplication = 0.0;
  // Probability a frame has one random bit flipped anywhere in it. Every
  // checksum layer (Ethernet-less in the sim, so IPv4/TCP/UDP/ICMP/AEAD)
  // must catch the mangling; see nic.rx_checksum_drops.
  double corruption = 0.0;
  // Probability a frame is held back so frames behind it overtake it.
  double reorder = 0.0;
  // Held frames are delayed by reorder_hold * uniform{1..reorder_window}.
  int reorder_window = 4;
  sim::Duration reorder_hold = sim::Duration::milliseconds(1);
  // Uniform extra latency in [0, jitter_max] added to every frame.
  sim::Duration jitter_max;
  // Gilbert–Elliott burst loss: per-frame state transitions good->bad with
  // p_good_to_bad and bad->good with p_bad_to_good; frames are lost with the
  // current state's loss probability. All zeros disables the chain.
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.0;

  bool enabled() const {
    return loss > 0 || duplication > 0 || corruption > 0 || reorder > 0 ||
           jitter_max > sim::Duration() ||
           (ge_p_good_to_bad > 0 && ge_loss_bad > 0) || ge_loss_good > 0;
  }
};

struct FaultInjectorStats {
  std::uint64_t frames = 0;       // frames that entered the injector
  std::uint64_t lost_random = 0;  // dropped by i.i.d. loss
  std::uint64_t lost_burst = 0;   // dropped by the Gilbert–Elliott chain
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;   // extra deliveries scheduled
  std::uint64_t reordered = 0;    // frames held back past later frames
  std::uint64_t jittered = 0;     // frames given nonzero extra latency

  // Frames removed from the wire (the conservation oracle uses this:
  // rx == tx - lost() + duplicated, exactly, at quiescence).
  std::uint64_t lost() const { return lost_random + lost_burst; }
};

class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, std::uint64_t seed)
      : profile_(profile), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultProfile& profile() const { return profile_; }
  const FaultInjectorStats& stats() const { return stats_; }
  bool in_burst_state() const { return ge_bad_; }

  // Called by LinkPort for every frame leaving the serializer; `base_delay`
  // is serialization + propagation. Decides the frame's fate and schedules
  // zero, one, or two deliveries on the port's peer.
  void on_wire_transit(LinkPort& port, net::Packet pkt, sim::Duration base_delay);

  // Registers "fault.*" counters under the given label set (conventionally
  // the owning port's "link=<name>,side=<side>" labels).
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

 private:
  FaultProfile profile_;
  sim::Random rng_;
  bool ge_bad_ = false;
  FaultInjectorStats stats_;
};

}  // namespace barb::link
