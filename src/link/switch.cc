#include "link/switch.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "net/frame_view.h"
#include "util/assert.h"

namespace barb::link {

struct Switch::PortSink : FrameSink {
  Switch* parent;
  int index;

  PortSink(Switch* sw, int idx) : parent(sw), index(idx) {}

  void deliver(net::Packet pkt) override { parent->handle_frame(index, std::move(pkt)); }
};

namespace {

// Slots never transition filled -> empty (evictions replace in place), so a
// key always lives within the probe window of its home slot.
std::uint64_t fib_key(const net::MacAddress& mac) {
  // +1 keeps 0 as the empty-slot sentinel even for the all-zero address.
  return mac.to_u64() + 1;
}

}  // namespace

Switch::Switch(sim::Simulation& sim, std::string name, SwitchConfig config)
    : sim_(sim), name_(std::move(name)), config_(config) {
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(config_.fib_capacity, 2 * kProbeWindow));
  fib_.resize(capacity);
  fib_mask_ = capacity - 1;
}

Switch::~Switch() = default;

int Switch::attach(LinkPort& port) {
  const int index = static_cast<int>(ports_.size());
  ports_.push_back(&port);
  sinks_.push_back(std::make_unique<PortSink>(this, index));
  port.connect_sink(sinks_.back().get());
  return index;
}

std::size_t Switch::home_slot(std::uint64_t key) const {
  // splitmix64 finalizer: full-avalanche spread of the 48-bit MAC space
  // across the slot array.
  std::uint64_t h = key;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h) & fib_mask_;
}

int Switch::lookup(const net::MacAddress& mac) const {
  const std::uint64_t key = fib_key(mac);
  const std::size_t home = home_slot(key);
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const FibEntry& entry = fib_[(home + i) & fib_mask_];
    if (entry.key != key) continue;
    if (!entry.pinned && sim_.now() - entry.learned > config_.mac_table_aging) {
      return -1;  // aged out; the slot stays until relearned or evicted
    }
    return entry.port;
  }
  return -1;
}

void Switch::learn(const net::MacAddress& mac, int port) {
  const std::uint64_t key = fib_key(mac);
  const std::size_t home = home_slot(key);
  std::size_t empty_slot = fib_.size();   // sentinel: none found
  std::size_t victim_slot = fib_.size();  // stalest unpinned in the window
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const std::size_t slot = (home + i) & fib_mask_;
    FibEntry& entry = fib_[slot];
    if (entry.key == key) {
      if (entry.pinned) return;  // static topology entries win over learning
      entry.port = port;
      entry.learned = sim_.now();
      return;
    }
    if (entry.key == 0) {
      if (empty_slot == fib_.size()) empty_slot = slot;
      continue;
    }
    if (!entry.pinned &&
        (victim_slot == fib_.size() || entry.learned < fib_[victim_slot].learned)) {
      victim_slot = slot;
    }
  }
  std::size_t slot = empty_slot;
  if (slot == fib_.size()) {
    if (victim_slot == fib_.size()) return;  // window full of pinned entries
    slot = victim_slot;
    ++stats_.fib_evictions;
  } else {
    ++fib_live_;
  }
  fib_[slot] = FibEntry{key, port, false, sim_.now()};
}

bool Switch::preload(const net::MacAddress& mac, int port) {
  const std::uint64_t key = fib_key(mac);
  const std::size_t home = home_slot(key);
  std::size_t empty_slot = fib_.size();
  std::size_t victim_slot = fib_.size();
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const std::size_t slot = (home + i) & fib_mask_;
    FibEntry& entry = fib_[slot];
    if (entry.key == key) {
      entry.port = port;
      entry.pinned = true;
      entry.learned = sim_.now();
      return true;
    }
    if (entry.key == 0) {
      if (empty_slot == fib_.size()) empty_slot = slot;
    } else if (!entry.pinned && victim_slot == fib_.size()) {
      victim_slot = slot;
    }
  }
  std::size_t slot = empty_slot;
  if (slot == fib_.size()) {
    if (victim_slot == fib_.size()) return false;
    slot = victim_slot;
    ++stats_.fib_evictions;
  } else {
    ++fib_live_;
  }
  fib_[slot] = FibEntry{key, port, true, sim_.now()};
  return true;
}

void Switch::handle_frame(int ingress, net::Packet pkt) {
  // A malformed Ethernet header cannot be forwarded anywhere. The cached
  // parse is shared with every NIC and firewall the frame later reaches.
  const net::FrameView* view = pkt.view();
  if (view == nullptr) return;
  const net::EthernetHeader& eth = view->eth;

  // Learn the source address on the ingress port.
  if (config_.learning && !eth.src.is_multicast()) {
    learn(eth.src, ingress);
  }

  const int egress = eth.dst.is_multicast() ? -1 : lookup(eth.dst);
  if (egress == ingress) {
    // Destination lives on the ingress segment; a real switch filters this.
    ++stats_.filtered;
    return;
  }

  auto deliver_after_latency = [this](int port, net::Packet p) {
    sim_.schedule(config_.forwarding_delay,
                  [this, port, pk = std::move(p)]() mutable {
                    forward(port, std::move(pk));
                  });
  };

  if (egress >= 0) {
    ++stats_.forwarded;
    deliver_after_latency(egress, std::move(pkt));
    return;
  }

  if (!config_.flood_unknown) {
    // Redundant-path fabrics run with a fully preloaded FIB and flooding
    // off; an unknown destination is a misconfiguration, not a broadcast.
    ++stats_.no_route_drops;
    return;
  }

  // Flood to all other ports: each copy is a refcount bump on the shared
  // frame buffer, never a duplication of the payload bytes.
  ++stats_.flooded;
  for (int p = 0; p < num_ports(); ++p) {
    if (p == ingress) continue;
    deliver_after_latency(p, pkt);
  }
}

void Switch::forward(int egress, net::Packet pkt) {
  BARB_ASSERT(egress >= 0 && egress < num_ports());
  ports_[static_cast<std::size_t>(egress)]->send(std::move(pkt));
}

void Switch::register_metrics(telemetry::MetricRegistry& registry,
                              const std::string& labels) const {
  registry.counter_fn("switch.forwarded", labels,
                      [this] { return static_cast<double>(stats_.forwarded); });
  registry.counter_fn("switch.flooded", labels,
                      [this] { return static_cast<double>(stats_.flooded); });
  registry.counter_fn("switch.filtered", labels,
                      [this] { return static_cast<double>(stats_.filtered); });
  for (int p = 0; p < num_ports(); ++p) {
    const LinkPort* port = ports_[static_cast<std::size_t>(p)];
    registry.gauge("switch.egress_queue_depth",
                   telemetry::join_labels(labels, "port=" + std::to_string(p)),
                   [port] { return static_cast<double>(port->queue_depth()); });
    registry.gauge("switch.egress_queued_bytes",
                   telemetry::join_labels(labels, "port=" + std::to_string(p)),
                   [port] { return static_cast<double>(port->queued_bytes()); });
  }
}

void Switch::register_fib_metrics(telemetry::MetricRegistry& registry,
                                  const std::string& labels) const {
  registry.counter_fn("switch.fib_evictions", labels,
                      [this] { return static_cast<double>(stats_.fib_evictions); });
  registry.counter_fn("switch.no_route_drops", labels,
                      [this] { return static_cast<double>(stats_.no_route_drops); });
  registry.gauge("switch.fib_entries", labels,
                 [this] { return static_cast<double>(fib_size()); });
  registry.gauge("switch.fib_bytes", labels,
                 [this] { return static_cast<double>(fib_memory_bytes()); });
}

}  // namespace barb::link
