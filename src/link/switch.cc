#include "link/switch.h"

#include <utility>

#include "net/frame_view.h"
#include "util/assert.h"

namespace barb::link {

struct Switch::PortSink : FrameSink {
  Switch* parent;
  int index;

  PortSink(Switch* sw, int idx) : parent(sw), index(idx) {}

  void deliver(net::Packet pkt) override { parent->handle_frame(index, std::move(pkt)); }
};

Switch::Switch(sim::Simulation& sim, std::string name, SwitchConfig config)
    : sim_(sim), name_(std::move(name)), config_(config) {}

Switch::~Switch() = default;

int Switch::attach(LinkPort& port) {
  const int index = static_cast<int>(ports_.size());
  ports_.push_back(&port);
  sinks_.push_back(std::make_unique<PortSink>(this, index));
  port.connect_sink(sinks_.back().get());
  return index;
}

int Switch::lookup(const net::MacAddress& mac) const {
  auto it = mac_table_.find(mac);
  if (it == mac_table_.end()) return -1;
  if (sim_.now() - it->second.learned > config_.mac_table_aging) return -1;
  return it->second.port;
}

void Switch::handle_frame(int ingress, net::Packet pkt) {
  // A malformed Ethernet header cannot be forwarded anywhere. The cached
  // parse is shared with every NIC and firewall the frame later reaches.
  const net::FrameView* view = pkt.view();
  if (view == nullptr) return;
  const net::EthernetHeader& eth = view->eth;

  // Learn the source address on the ingress port.
  if (!eth.src.is_multicast()) {
    mac_table_[eth.src] = MacEntry{ingress, sim_.now()};
  }

  const int egress = eth.dst.is_multicast() ? -1 : lookup(eth.dst);
  if (egress == ingress) {
    // Destination lives on the ingress segment; a real switch filters this.
    ++stats_.filtered;
    return;
  }

  auto deliver_after_latency = [this](int port, net::Packet p) {
    sim_.schedule(config_.forwarding_delay,
                  [this, port, pk = std::move(p)]() mutable {
                    forward(port, std::move(pk));
                  });
  };

  if (egress >= 0) {
    ++stats_.forwarded;
    deliver_after_latency(egress, std::move(pkt));
    return;
  }

  // Flood to all other ports: each copy is a refcount bump on the shared
  // frame buffer, never a duplication of the payload bytes.
  ++stats_.flooded;
  for (int p = 0; p < num_ports(); ++p) {
    if (p == ingress) continue;
    deliver_after_latency(p, pkt);
  }
}

void Switch::forward(int egress, net::Packet pkt) {
  BARB_ASSERT(egress >= 0 && egress < num_ports());
  ports_[static_cast<std::size_t>(egress)]->send(std::move(pkt));
}

void Switch::register_metrics(telemetry::MetricRegistry& registry,
                              const std::string& labels) const {
  registry.counter_fn("switch.forwarded", labels,
                      [this] { return static_cast<double>(stats_.forwarded); });
  registry.counter_fn("switch.flooded", labels,
                      [this] { return static_cast<double>(stats_.flooded); });
  registry.counter_fn("switch.filtered", labels,
                      [this] { return static_cast<double>(stats_.filtered); });
  for (int p = 0; p < num_ports(); ++p) {
    const LinkPort* port = ports_[static_cast<std::size_t>(p)];
    registry.gauge("switch.egress_queue_depth",
                   telemetry::join_labels(labels, "port=" + std::to_string(p)),
                   [port] { return static_cast<double>(port->queue_depth()); });
    registry.gauge("switch.egress_queued_bytes",
                   telemetry::join_labels(labels, "port=" + std::to_string(p)),
                   [port] { return static_cast<double>(port->queued_bytes()); });
  }
}

}  // namespace barb::link
