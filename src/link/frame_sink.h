// Receiving end of a wire: anything a link can deliver a frame to.
#pragma once

#include "net/packet.h"

namespace barb::link {

class FrameSink {
 public:
  virtual ~FrameSink() = default;

  // Called when a frame has fully arrived (after serialization and
  // propagation delay). The sink takes ownership of the packet.
  virtual void deliver(net::Packet pkt) = 0;
};

}  // namespace barb::link
