#include "link/sharded_domain.h"

#include <utility>

#include "net/packet.h"
#include "util/assert.h"

namespace barb::link {

namespace {
// Pools still holding live buffers at domain teardown are parked here for
// the life of the process: the frames referencing them (queued in links or
// switches that outlive the domain) release through the pool pointer on
// their buffer, which must stay valid. Reachable at exit, so leak-clean.
std::vector<std::unique_ptr<net::BufferPool>>& pool_graveyard() {
  static std::vector<std::unique_ptr<net::BufferPool>> graveyard;
  return graveyard;
}
}  // namespace

ShardedLinkDomain::ShardedLinkDomain(sim::Simulation& sim, int shards,
                                     int rng_home_shard)
    : sim_(sim), engine_(sim, shards) {
  pools_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    pools_.push_back(std::make_unique<net::BufferPool>());
  }
  engine_.set_thread_hooks(
      [this](int shard) {
        net::BufferPool::set_thread_pool_override(
            pools_[static_cast<std::size_t>(shard)].get());
      },
      [](int) { net::BufferPool::set_thread_pool_override(nullptr); });
  sim_.attach_engine(&engine_, rng_home_shard);
}

ShardedLinkDomain::~ShardedLinkDomain() {
  sim_.attach_engine(nullptr);
  for (auto& pool : pools_) {
    if (pool->live_buffers() > 0) pool_graveyard().push_back(std::move(pool));
  }
}

void ShardedLinkDomain::register_metrics(telemetry::MetricRegistry& registry) {
  for (int s = 0; s < engine_.shards(); ++s) {
    registry.counter_fn("des.shard_events", "shard=" + std::to_string(s),
                        [this, s] {
                          return static_cast<double>(
                              engine_.shard_scheduler(s).events_executed());
                        });
  }
  registry.counter_fn("des.horizon_stalls", "", [this] {
    return static_cast<double>(engine_.stats().horizon_stalls);
  });
  registry.counter_fn("des.quiescence_lifts", "", [this] {
    return static_cast<double>(engine_.stats().quiescence_lifts);
  });
  registry.counter_fn("des.messages", "", [this] {
    return static_cast<double>(engine_.stats().messages);
  });
  registry.gauge("des.mailbox_depth", "", [this] {
    return static_cast<double>(engine_.stats().mailbox_depth);
  });
}

void ShardedLinkDomain::attach(Link& link, int shard_a, int shard_b) {
  if (shard_a == shard_b) return;
  // The earliest delivery either direction can produce is one minimum-size
  // frame's serialization plus the wire's propagation ahead of the sender's
  // clock; that is the conservative lookahead of the cut. add_edge rejects
  // a non-positive result (it cannot happen for finite-rate links, but a
  // hand-built zero-latency link must not silently serialize the shards).
  const sim::Duration lookahead =
      link.config().propagation + link.a().frame_time(0);
  attach_direction(link.a(), shard_a, link.b(), shard_b, lookahead);
  attach_direction(link.b(), shard_b, link.a(), shard_a, lookahead);
}

void ShardedLinkDomain::attach_direction(LinkPort& from_port, int from_shard,
                                         LinkPort& to_port, int to_shard,
                                         sim::Duration lookahead) {
  engine_.add_edge(from_shard, to_shard, lookahead);
  const int endpoint = engine_.add_endpoint(
      to_shard, [this, to_shard, port = &to_port](sim::MailboxMessage&& m) {
        // Runs on the receiving shard's thread at mailbox-drain time (or on
        // the main thread for setup traffic, when workers are idle); the
        // frame is rebuilt on that shard's pool and inserted at the serial
        // engine's dispatch key (deliver time, sender-side origin).
        sim::Scheduler* sched = &engine_.shard_scheduler(to_shard);
        sched->schedule_at_origin(
            m.deliver_at, m.sched_at,
            [port, bytes = std::move(m.bytes), created = m.meta_time,
             id = m.meta_id] {
              net::Packet pkt(net::BufferPool::instance().create(bytes),
                              created, id);
              port->deliver_from_peer(std::move(pkt));
            });
      });
  from_port.set_cross_shard(&engine_, endpoint);
}

}  // namespace barb::link
