// Shard-attach layer between the fabric and the parallel engine.
//
// A ShardedLinkDomain owns one sim::ParallelEngine plus one persistent
// net::BufferPool per shard, and wires cut links (links whose two ports live
// on different shards) into the engine: per direction it declares the
// conservative lookahead (propagation + minimum frame serialization time —
// the earliest any delivery that direction can produce), registers a
// delivery endpoint that rebuilds the frame on the receiver's pool and
// inserts it into the receiver's wheel at the serial engine's exact
// (time, schedule-origin) dispatch key, and flips the sending port into
// cross-shard mode.
//
// Buffer lifetime: shard worker threads are pointed at the per-shard pools
// via BufferPool::set_thread_pool_override, so frames a shard allocates
// survive the per-run spawn/join of its thread. At domain teardown any pool
// that still owns live buffers (frames queued in links or switches that
// outlive the domain) is parked on a process-lifetime graveyard instead of
// being destroyed — releasing those frames later must not touch a dead pool.
#pragma once

#include <memory>
#include <vector>

#include "link/link.h"
#include "net/frame_buffer.h"
#include "sim/parallel_engine.h"
#include "telemetry/registry.h"

namespace barb::link {

class ShardedLinkDomain {
 public:
  // Creates the engine with `shards` shards and attaches it to `sim`.
  // `rng_home_shard` is forwarded to Simulation::attach_engine (-1 forbids
  // all shard-side draws from the simulation RNG).
  ShardedLinkDomain(sim::Simulation& sim, int shards, int rng_home_shard = 0);
  ~ShardedLinkDomain();

  ShardedLinkDomain(const ShardedLinkDomain&) = delete;
  ShardedLinkDomain& operator=(const ShardedLinkDomain&) = delete;

  sim::ParallelEngine& engine() { return engine_; }
  int shards() const { return engine_.shards(); }
  net::BufferPool& pool(int shard) {
    return *pools_[static_cast<std::size_t>(shard)];
  }

  // Wires `link` across the shard boundary: port a() lives on `shard_a`,
  // port b() on `shard_b`. No-op when both sides share a shard. Call before
  // any traffic flows on the link.
  void attach(Link& link, int shard_a, int shard_b);

  // Registers the engine counters under "des.*" (per-shard events executed,
  // horizon stalls, quiescence lifts, cross-shard messages, mailbox depth).
  // Opt-in and kept out of the paper-figure metric sets, which are a
  // byte-identity regression gate. Sampling happens in control events (all
  // shards parked), so the reads are race-free.
  void register_metrics(telemetry::MetricRegistry& registry);

 private:
  void attach_direction(LinkPort& from_port, int from_shard, LinkPort& to_port,
                        int to_shard, sim::Duration lookahead);

  sim::Simulation& sim_;
  std::vector<std::unique_ptr<net::BufferPool>> pools_;
  sim::ParallelEngine engine_;
};

}  // namespace barb::link
