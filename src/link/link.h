// Full-duplex point-to-point Ethernet link.
//
// Each direction serializes one frame at a time at the configured rate
// (including preamble, FCS, and inter-frame gap, so 100 Mbps yields the real
// maximum frame rates: 8127 fps at 1518-byte frames, 148810 fps at 64-byte
// frames). Each LinkPort owns a finite drop-tail transmit queue; the queue on
// the switch side of a link is exactly the switch egress queue, which is what
// couples a flood to legitimate traffic in the paper's no-firewall baseline.
//
// Delivery engines. The classic per-frame engine costs two scheduler events
// per frame (delivery + transmitter-free), and every queued frame holds a
// pending event — at fleet scale that is the dominant scheduler load. The
// batched engine replays the identical timeline from a virtual serialization
// clock: send() computes each frame's serialization window and delivery time
// arithmetically, frames wait in a per-port delivery queue, and ONE armed
// timer per port direction delivers the head and re-arms for the next. TX
// accounting is applied lazily (advance-on-read) so sampled metrics see the
// same values at the same instants; the pending-event population drops from
// O(frames in flight) to O(port directions) and the transmitter-free events
// vanish. Ports with a fault injector always take the per-frame path: the
// injector draws RNG at serialization start, and only the per-frame engine
// executes an event there.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "link/frame_sink.h"
#include "net/ethernet.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"

namespace barb::sim {
class ParallelEngine;
}  // namespace barb::sim

namespace barb::link {

struct LinkConfig {
  double rate_bps = 100e6;                                   // 100 Mbps Ethernet
  sim::Duration propagation = sim::Duration::nanoseconds(500);  // ~100 m of cable
  // Per-direction TX buffering in BYTES (switches buffer bytes, not frames;
  // byte accounting matters under flood: minimum-size attack frames are ~25x
  // cheaper to queue than full-size data frames).
  std::size_t queue_bytes = 150 * 1024;
  // Selects the batched delivery engine for both ports of this link. The
  // timeline is identical either way (gated byte-identical on the paper
  // figures); batched is the default for fleet fabrics, per-frame for the
  // 4-host testbed preset.
  bool batched = false;
};

// Effective delivery mode for newly built links: the BARB_LINK_BATCH
// environment variable ("1"/"0") overrides the builder's default.
bool batch_delivery_enabled(bool default_batched);

struct LinkPortStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t dropped_frames = 0;  // TX queue overflow
  // Accumulated serialization time; delta(busy_time)/delta(t) between probe
  // samples is the link's TX utilization over that interval.
  sim::Duration busy_time;
};

class Link;
class FaultInjector;

// One side's attachment point to a link. send() transmits toward the peer;
// frames from the peer are handed to the connected sink.
class LinkPort {
 public:
  ~LinkPort();

  // Registers the local receiver for frames arriving from the peer.
  void connect_sink(FrameSink* sink) { sink_ = sink; }
  FrameSink* sink() const { return sink_; }
  // The port on the other side of this link (null until attached).
  LinkPort* peer() const { return peer_; }

  // Installs a fault injector on this port's TRANSMIT direction (nullptr
  // removes it; not owned). Every frame this port serializes is routed
  // through the injector, which may drop, corrupt, duplicate, delay, or
  // reorder its delivery to the peer. Without an injector the port takes
  // the exact fault-free path and performs no RNG draws. Install before any
  // traffic: a port must run one delivery engine for its whole lifetime.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return fault_; }

  // Enqueues a frame for transmission; drops it if the TX queue is full.
  void send(net::Packet pkt);

  const LinkPortStats& stats() const;
  std::size_t queue_depth() const;
  std::size_t queued_bytes() const;
  bool connected() const { return link_ != nullptr; }

  // Registers this port's stats (frames/bytes/drops/busy time, queue depth)
  // under "link.*" with the given label set. The registry must not be
  // sampled after this port is destroyed.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

  // Wire occupancy time of a frame on this link.
  sim::Duration frame_time(std::size_t frame_bytes) const;

  // Marks this port's TRANSMIT direction as crossing a shard boundary:
  // deliveries to the peer travel through the parallel engine's mailboxes
  // (endpoint `endpoint`, which lives on the peer's shard) instead of the
  // local scheduler. Install before any traffic (ShardedLinkDomain::attach
  // does the wiring). All local state — TX queueing, accounting, drops,
  // the per-frame transmitter-free event — stays on this port's shard.
  void set_cross_shard(sim::ParallelEngine* engine, std::int32_t endpoint);

  // Receiver-side entry for cross-shard frames: applies RX accounting and
  // hands the frame to the sink. Runs on this port's shard thread at the
  // mailbox message's delivery time.
  void deliver_from_peer(net::Packet pkt);

 private:
  friend class Link;
  friend class FaultInjector;

  // --- per-frame engine ---
  void start_transmission(net::Packet pkt);
  void on_transmit_complete();
  // Schedules delivery of `pkt` to the peer after `delay`; rx accounting
  // happens at delivery time. The fault injector calls this zero, one, or
  // two times per transmitted frame.
  void schedule_delivery(net::Packet pkt, sim::Duration delay);

  // --- batched engine ---
  struct PendingFrame {
    sim::TimePoint ser_start;   // transmitter picks the frame up
    sim::TimePoint deliver_at;  // serialization end + propagation
    sim::Duration tx_time;      // serialization time (busy_time contribution)
    std::size_t bytes = 0;
    net::Packet pkt;
  };

  bool use_batched() const;
  // Applies TX-side accounting (tx_frames/tx_bytes/busy_time, queue drain)
  // for every pending frame whose serialization has started by `now`.
  // Observers (stats(), queue gauges) advance to the current instant before
  // reading, so sampled values match the per-frame engine's exactly.
  void advance_accounting(sim::TimePoint now) const;
  void deliver_batch();
  void arm_batch_timer(sim::TimePoint at);

  Link* link_ = nullptr;
  LinkPort* peer_ = nullptr;
  FrameSink* sink_ = nullptr;
  FaultInjector* fault_ = nullptr;

  // Cross-shard TX state (null/unused for same-shard links).
  sim::ParallelEngine* cross_engine_ = nullptr;
  std::int32_t cross_endpoint_ = -1;
  // Batched cross path: previous frame's delivery time, which is when the
  // serial engine's batch timer would have been re-armed — it becomes the
  // next delivery event's schedule-origin so the merged dispatch order
  // matches the serial timeline exactly.
  sim::TimePoint last_deliver_at_;

  // Per-frame engine state.
  std::deque<net::Packet> queue_;
  bool transmitting_ = false;

  // Batched engine state: frames sent but not yet delivered, FIFO in
  // serialization (= delivery) order. Entries below acct_idx_ have had their
  // TX accounting applied; queued_bytes_ sums the entries above it.
  std::deque<PendingFrame> pending_;
  mutable std::size_t acct_idx_ = 0;
  sim::TimePoint tx_free_at_;
  sim::EventHandle batch_timer_;

  mutable std::size_t queued_bytes_ = 0;
  mutable LinkPortStats stats_;
};

class Link {
 public:
  Link(sim::Simulation& sim, LinkConfig config = {});

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  LinkPort& a() { return a_; }
  LinkPort& b() { return b_; }
  const LinkConfig& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }

 private:
  friend class LinkPort;

  sim::Simulation& sim_;
  LinkConfig config_;
  LinkPort a_;
  LinkPort b_;
};

}  // namespace barb::link
