#include "link/link.h"

#include <cstdlib>
#include <utility>

#include "link/fault_injector.h"
#include "sim/parallel_engine.h"
#include "util/assert.h"
#include "util/logging.h"

namespace barb::link {

bool batch_delivery_enabled(bool default_batched) {
  const char* env = std::getenv("BARB_LINK_BATCH");
  if (env == nullptr || *env == '\0') return default_batched;
  return env[0] != '0';
}

Link::Link(sim::Simulation& sim, LinkConfig config) : sim_(sim), config_(config) {
  a_.link_ = this;
  a_.peer_ = &b_;
  b_.link_ = this;
  b_.peer_ = &a_;
}

LinkPort::~LinkPort() { batch_timer_.cancel(); }

void LinkPort::set_fault_injector(FaultInjector* injector) {
  // A port runs one delivery engine for its lifetime; installing an injector
  // after batched traffic has queued frames would mix the two.
  BARB_ASSERT_MSG(pending_.empty(), "install fault injectors before traffic");
  fault_ = injector;
}

void LinkPort::set_cross_shard(sim::ParallelEngine* engine,
                               std::int32_t endpoint) {
  BARB_ASSERT_MSG(pending_.empty() && queue_.empty() && !transmitting_,
                  "mark cross-shard ports before traffic");
  cross_engine_ = engine;
  cross_endpoint_ = endpoint;
}

void LinkPort::deliver_from_peer(net::Packet pkt) {
  stats_.rx_frames++;
  stats_.rx_bytes += pkt.size();
  if (sink_ != nullptr) sink_->deliver(std::move(pkt));
}

bool LinkPort::use_batched() const {
  return link_ != nullptr && link_->config().batched && fault_ == nullptr;
}

sim::Duration LinkPort::frame_time(std::size_t frame_bytes) const {
  BARB_ASSERT(link_ != nullptr);
  const std::size_t wire_bytes =
      std::max(frame_bytes, net::kEthernetMinFrameNoFcs) + net::kEthernetWireOverhead;
  const double seconds =
      static_cast<double>(wire_bytes) * 8.0 / link_->config().rate_bps;
  return sim::Duration::from_seconds(seconds);
}

void LinkPort::send(net::Packet pkt) {
  BARB_ASSERT_MSG(link_ != nullptr, "port not attached to a link");
  if (use_batched()) {
    const sim::TimePoint now = link_->sim_.now();
    advance_accounting(now);
    const bool busy = tx_free_at_ > now;
    if (busy) {
      if (queued_bytes_ + pkt.size() > link_->config().queue_bytes) {
        ++stats_.dropped_frames;
        return;
      }
      queued_bytes_ += pkt.size();
    }
    const sim::TimePoint ser_start = busy ? tx_free_at_ : now;
    const sim::Duration tx_time = frame_time(pkt.size());
    const sim::TimePoint ser_end = ser_start + tx_time;
    const sim::TimePoint deliver_at = ser_end + link_->config().propagation;
    tx_free_at_ = ser_end;
    const std::size_t bytes = pkt.size();
    if (cross_engine_ != nullptr) {
      // The delivery event lives on the peer's shard. Its schedule-origin
      // replays the serial batch timer: armed at send time when the previous
      // delivery has already happened, else re-armed at that delivery (each
      // frame gets its own timer event — delivery times are strictly
      // monotone per direction).
      const sim::TimePoint origin =
          last_deliver_at_ > now ? last_deliver_at_ : now;
      last_deliver_at_ = deliver_at;
      cross_engine_->send(sim::MailboxMessage{deliver_at, origin, pkt.created,
                                              pkt.id, cross_endpoint_,
                                              pkt.copy_bytes()});
      // Keep a frame-less stub so lazy TX accounting (and the queue gauges)
      // sees the identical schedule; applied stubs are dropped right away.
      pending_.push_back(
          PendingFrame{ser_start, deliver_at, tx_time, bytes, net::Packet{}});
    } else {
      pending_.push_back(PendingFrame{ser_start, deliver_at, tx_time, bytes,
                                      std::move(pkt)});
    }
    if (!busy) {
      // Serialization starts now: account it immediately, exactly where the
      // per-frame engine does.
      stats_.tx_frames++;
      stats_.tx_bytes += bytes;
      stats_.busy_time += tx_time;
      ++acct_idx_;
    }
    if (cross_engine_ != nullptr) {
      while (acct_idx_ > 0) {
        pending_.pop_front();
        --acct_idx_;
      }
      return;
    }
    if (!batch_timer_.pending()) arm_batch_timer(pending_.front().deliver_at);
    return;
  }
  if (transmitting_) {
    if (queued_bytes_ + pkt.size() > link_->config().queue_bytes) {
      ++stats_.dropped_frames;
      return;
    }
    queued_bytes_ += pkt.size();
    queue_.push_back(std::move(pkt));
    return;
  }
  start_transmission(std::move(pkt));
}

void LinkPort::advance_accounting(sim::TimePoint now) const {
  while (acct_idx_ < pending_.size()) {
    const PendingFrame& f = pending_[acct_idx_];
    if (f.ser_start > now) break;
    stats_.tx_frames++;
    stats_.tx_bytes += f.bytes;
    stats_.busy_time += f.tx_time;
    queued_bytes_ -= f.bytes;
    ++acct_idx_;
  }
}

void LinkPort::arm_batch_timer(sim::TimePoint at) {
  batch_timer_ = link_->sim_.schedule_at(at, [this] { deliver_batch(); });
}

void LinkPort::deliver_batch() {
  const sim::TimePoint now = link_->sim_.now();
  advance_accounting(now);
  while (!pending_.empty() && pending_.front().deliver_at <= now) {
    // Delivery follows serialization end, so the head frame's TX accounting
    // has always been applied by the advance above.
    BARB_ASSERT(acct_idx_ > 0);
    PendingFrame f = std::move(pending_.front());
    pending_.pop_front();
    --acct_idx_;
    peer_->stats_.rx_frames++;
    peer_->stats_.rx_bytes += f.bytes;
    if (peer_->sink_ != nullptr) peer_->sink_->deliver(std::move(f.pkt));
  }
  if (!pending_.empty()) arm_batch_timer(pending_.front().deliver_at);
}

const LinkPortStats& LinkPort::stats() const {
  if (use_batched() && !pending_.empty()) advance_accounting(link_->sim_.now());
  return stats_;
}

std::size_t LinkPort::queue_depth() const {
  if (use_batched()) {
    if (link_ == nullptr) return 0;
    const sim::TimePoint now = link_->sim_.now();
    advance_accounting(now);
    const std::size_t waiting = pending_.size() - acct_idx_;
    return waiting + (tx_free_at_ > now ? 1 : 0);
  }
  return queue_.size() + (transmitting_ ? 1 : 0);
}

std::size_t LinkPort::queued_bytes() const {
  if (use_batched() && !pending_.empty()) advance_accounting(link_->sim_.now());
  return queued_bytes_;
}

void LinkPort::start_transmission(net::Packet pkt) {
  transmitting_ = true;
  const auto tx_time = frame_time(pkt.size());
  stats_.tx_frames++;
  stats_.tx_bytes += pkt.size();
  stats_.busy_time += tx_time;

  auto& sim = link_->simulation();
  const auto arrival = tx_time + link_->config().propagation;
  // Delivery to the peer after serialization + propagation — perturbed by
  // the fault injector when one is installed on this direction.
  if (fault_ != nullptr) {
    fault_->on_wire_transit(*this, std::move(pkt), arrival);
  } else {
    schedule_delivery(std::move(pkt), arrival);
  }
  // The transmitter frees after serialization (IFG already accounted in
  // frame_time), independent of propagation.
  sim.schedule(tx_time, [this] { on_transmit_complete(); });
}

void LinkPort::schedule_delivery(net::Packet pkt, sim::Duration delay) {
  if (cross_engine_ != nullptr) {
    // Per-frame (and fault-injected) cross-shard path: the serial engine
    // would schedule the delivery here, so the message's origin is now.
    const sim::TimePoint now = link_->sim_.now();
    cross_engine_->send(sim::MailboxMessage{now + delay, now, pkt.created,
                                            pkt.id, cross_endpoint_,
                                            pkt.copy_bytes()});
    return;
  }
  link_->simulation().schedule(delay, [peer = peer_, p = std::move(pkt)]() mutable {
    peer->stats_.rx_frames++;
    peer->stats_.rx_bytes += p.size();
    if (peer->sink_ != nullptr) peer->sink_->deliver(std::move(p));
  });
}

void LinkPort::register_metrics(telemetry::MetricRegistry& registry,
                                const std::string& labels) const {
  registry.counter_fn("link.tx_frames", labels,
                      [this] { return static_cast<double>(stats().tx_frames); });
  registry.counter_fn("link.tx_bytes", labels,
                      [this] { return static_cast<double>(stats().tx_bytes); });
  registry.counter_fn("link.rx_frames", labels,
                      [this] { return static_cast<double>(stats().rx_frames); });
  registry.counter_fn("link.rx_bytes", labels,
                      [this] { return static_cast<double>(stats().rx_bytes); });
  registry.counter_fn("link.tx_drops", labels,
                      [this] { return static_cast<double>(stats().dropped_frames); });
  registry.counter_fn("link.busy_seconds", labels,
                      [this] { return stats().busy_time.to_seconds(); });
  registry.gauge("link.queue_depth", labels,
                 [this] { return static_cast<double>(queue_depth()); });
  registry.gauge("link.queued_bytes", labels,
                 [this] { return static_cast<double>(queued_bytes()); });
}

void LinkPort::on_transmit_complete() {
  transmitting_ = false;
  if (!queue_.empty()) {
    net::Packet next = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= next.size();
    start_transmission(std::move(next));
  }
}

}  // namespace barb::link
