#include "link/link.h"

#include <utility>

#include "link/fault_injector.h"
#include "util/assert.h"
#include "util/logging.h"

namespace barb::link {

Link::Link(sim::Simulation& sim, LinkConfig config) : sim_(sim), config_(config) {
  a_.link_ = this;
  a_.peer_ = &b_;
  b_.link_ = this;
  b_.peer_ = &a_;
}

sim::Duration LinkPort::frame_time(std::size_t frame_bytes) const {
  BARB_ASSERT(link_ != nullptr);
  const std::size_t wire_bytes =
      std::max(frame_bytes, net::kEthernetMinFrameNoFcs) + net::kEthernetWireOverhead;
  const double seconds =
      static_cast<double>(wire_bytes) * 8.0 / link_->config().rate_bps;
  return sim::Duration::from_seconds(seconds);
}

void LinkPort::send(net::Packet pkt) {
  BARB_ASSERT_MSG(link_ != nullptr, "port not attached to a link");
  if (transmitting_) {
    if (queued_bytes_ + pkt.size() > link_->config().queue_bytes) {
      ++stats_.dropped_frames;
      return;
    }
    queued_bytes_ += pkt.size();
    queue_.push_back(std::move(pkt));
    return;
  }
  start_transmission(std::move(pkt));
}

void LinkPort::start_transmission(net::Packet pkt) {
  transmitting_ = true;
  const auto tx_time = frame_time(pkt.size());
  stats_.tx_frames++;
  stats_.tx_bytes += pkt.size();
  stats_.busy_time += tx_time;

  auto& sim = link_->simulation();
  const auto arrival = tx_time + link_->config().propagation;
  // Delivery to the peer after serialization + propagation — perturbed by
  // the fault injector when one is installed on this direction.
  if (fault_ != nullptr) {
    fault_->on_wire_transit(*this, std::move(pkt), arrival);
  } else {
    schedule_delivery(std::move(pkt), arrival);
  }
  // The transmitter frees after serialization (IFG already accounted in
  // frame_time), independent of propagation.
  sim.schedule(tx_time, [this] { on_transmit_complete(); });
}

void LinkPort::schedule_delivery(net::Packet pkt, sim::Duration delay) {
  link_->simulation().schedule(delay, [peer = peer_, p = std::move(pkt)]() mutable {
    peer->stats_.rx_frames++;
    peer->stats_.rx_bytes += p.size();
    if (peer->sink_ != nullptr) peer->sink_->deliver(std::move(p));
  });
}

void LinkPort::register_metrics(telemetry::MetricRegistry& registry,
                                const std::string& labels) const {
  registry.counter_fn("link.tx_frames", labels,
                      [this] { return static_cast<double>(stats_.tx_frames); });
  registry.counter_fn("link.tx_bytes", labels,
                      [this] { return static_cast<double>(stats_.tx_bytes); });
  registry.counter_fn("link.rx_frames", labels,
                      [this] { return static_cast<double>(stats_.rx_frames); });
  registry.counter_fn("link.rx_bytes", labels,
                      [this] { return static_cast<double>(stats_.rx_bytes); });
  registry.counter_fn("link.tx_drops", labels,
                      [this] { return static_cast<double>(stats_.dropped_frames); });
  registry.counter_fn("link.busy_seconds", labels,
                      [this] { return stats_.busy_time.to_seconds(); });
  registry.gauge("link.queue_depth", labels,
                 [this] { return static_cast<double>(queue_depth()); });
  registry.gauge("link.queued_bytes", labels,
                 [this] { return static_cast<double>(queued_bytes_); });
}

void LinkPort::on_transmit_complete() {
  transmitting_ = false;
  if (!queue_.empty()) {
    net::Packet next = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= next.size();
    start_transmission(std::move(next));
  }
}

}  // namespace barb::link
