// Frame capture.
//
// FrameTap splices into any wire position (it is a FrameSink that forwards
// to a downstream sink) and records frames with simulated timestamps. The
// recording can be dumped as a standard pcap file (LINKTYPE_ETHERNET), so
// simulated traffic opens directly in Wireshark/tcpdump — invaluable when
// debugging why a policy drops something.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "link/frame_sink.h"
#include "net/frame_view.h"
#include "net/packet.h"

namespace barb::link {

struct CapturedFrame {
  sim::TimePoint at;
  std::vector<std::uint8_t> data;
};

// Annotates a trace line with a disposition, e.g. the firewall verdict for
// the frame ("allow", "deny:3"). A callback (rather than a FirewallNic
// reference) keeps barb_link independent of barb_firewall. Return an empty
// string to omit the verdict column.
using TraceVerdictFn =
    std::function<std::string(const CapturedFrame&, const net::FrameView&)>;

class FrameTap : public FrameSink {
 public:
  // Frames flow through to `downstream` (may be null for a pure sniffer).
  explicit FrameTap(FrameSink* downstream = nullptr, std::size_t max_frames = 100000)
      : downstream_(downstream), max_frames_(max_frames) {}

  void deliver(net::Packet pkt) override {
    if (frames_.size() < max_frames_) {
      // A capture owns its bytes (like a real pcap); this is the one place
      // on the frame path that copies intentionally.
      frames_.push_back(CapturedFrame{pkt.created, pkt.copy_bytes()});
    }
    ++seen_;
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  }

  const std::vector<CapturedFrame>& frames() const { return frames_; }
  std::uint64_t frames_seen() const { return seen_; }
  void clear() { frames_.clear(); }

  // Serializes the capture in pcap format (microsecond timestamps,
  // LINKTYPE_ETHERNET). Frames are stored without FCS, matching how
  // tcpdump captures appear on most systems.
  std::vector<std::uint8_t> to_pcap() const;

  // Writes the pcap bytes to a file; returns false on I/O failure.
  bool write_pcap(const std::string& path) const;

  // Canonical one-line-per-frame text dump, stable across runs for the same
  // seed (golden-trace regressions byte-compare it):
  //   <ns> <port> <proto> <src>:<sp> > <dst>:<dp> len=<n> [flags] [verdict=<v>]
  std::string to_text(const std::string& port_name,
                      const TraceVerdictFn& verdict = nullptr) const;

 private:
  FrameSink* downstream_;
  std::size_t max_frames_;
  std::vector<CapturedFrame> frames_;
  std::uint64_t seen_ = 0;
};

// Formats one captured frame as a canonical trace line (no trailing \n).
std::string format_trace_line(const CapturedFrame& frame, const std::string& port_name,
                              const TraceVerdictFn& verdict = nullptr);

// Merges several taps into one chronological dump. Ties are broken by tap
// order then capture order, so the output is deterministic. Each entry pairs
// a port name with its tap.
std::string merged_trace_text(
    const std::vector<std::pair<std::string, const FrameTap*>>& taps,
    const TraceVerdictFn& verdict = nullptr);

}  // namespace barb::link
