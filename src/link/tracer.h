// Frame capture.
//
// FrameTap splices into any wire position (it is a FrameSink that forwards
// to a downstream sink) and records frames with simulated timestamps. The
// recording can be dumped as a standard pcap file (LINKTYPE_ETHERNET), so
// simulated traffic opens directly in Wireshark/tcpdump — invaluable when
// debugging why a policy drops something.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "link/frame_sink.h"
#include "net/packet.h"

namespace barb::link {

struct CapturedFrame {
  sim::TimePoint at;
  std::vector<std::uint8_t> data;
};

class FrameTap : public FrameSink {
 public:
  // Frames flow through to `downstream` (may be null for a pure sniffer).
  explicit FrameTap(FrameSink* downstream = nullptr, std::size_t max_frames = 100000)
      : downstream_(downstream), max_frames_(max_frames) {}

  void deliver(net::Packet pkt) override {
    if (frames_.size() < max_frames_) {
      // A capture owns its bytes (like a real pcap); this is the one place
      // on the frame path that copies intentionally.
      frames_.push_back(CapturedFrame{pkt.created, pkt.copy_bytes()});
    }
    ++seen_;
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  }

  const std::vector<CapturedFrame>& frames() const { return frames_; }
  std::uint64_t frames_seen() const { return seen_; }
  void clear() { frames_.clear(); }

  // Serializes the capture in pcap format (microsecond timestamps,
  // LINKTYPE_ETHERNET). Frames are stored without FCS, matching how
  // tcpdump captures appear on most systems.
  std::vector<std::uint8_t> to_pcap() const;

  // Writes the pcap bytes to a file; returns false on I/O failure.
  bool write_pcap(const std::string& path) const;

 private:
  FrameSink* downstream_;
  std::size_t max_frames_;
  std::vector<CapturedFrame> frames_;
  std::uint64_t seen_ = 0;
};

}  // namespace barb::link
