// Store-and-forward learning Ethernet switch (the testbed's 3COM 3C16734A).
//
// Frames arrive fully serialized (the Link model delivers whole frames), are
// looked up in the MAC forwarding table after a small forwarding latency, and
// are queued on the egress LinkPort. Unknown destinations and broadcasts
// flood to all other ports (when flooding is enabled). The paper verified the
// switch itself was not the bottleneck; our model preserves that property
// (forwarding capacity is per-port line rate).
//
// The forwarding table is a bounded open-addressing FIB, not a growable map:
// a spoofed-source flood used to grow the table without limit, which a
// fleet-scale flood scenario turns into unbounded memory. Entries hash into a
// fixed power-of-two slot array; a full probe window evicts the stalest
// unpinned entry (counted in `fib_evictions`). Static fabrics preload pinned
// entries (never aged, never evicted) and can switch learning and unknown-
// destination flooding off entirely — multi-spine fabrics are loopy at L2, so
// flooding there would melt the simulation exactly the way it melts a real
// network without spanning tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "link/link.h"
#include "net/mac_address.h"
#include "sim/simulation.h"

namespace barb::link {

struct SwitchConfig {
  sim::Duration forwarding_delay = sim::Duration::microseconds(4);
  sim::Duration mac_table_aging = sim::Duration::seconds(300);
  // FIB slot count; rounded up to a power of two. Bounds memory no matter
  // how many source addresses a flood spoofs.
  std::size_t fib_capacity = 4096;
  // Learn source addresses from traffic. Static fabrics preload the FIB and
  // turn this off.
  bool learning = true;
  // Flood unknown unicast / multicast out every other port. Safe only on
  // loop-free topologies; fabrics with redundant paths must disable it.
  bool flood_unknown = true;
};

struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t flooded = 0;    // unknown unicast / broadcast
  std::uint64_t filtered = 0;   // destination learned on the ingress port
  std::uint64_t fib_evictions = 0;  // probe window full, stalest entry replaced
  std::uint64_t no_route_drops = 0;  // unknown destination, flooding disabled
};

class Switch {
 public:
  Switch(sim::Simulation& sim, std::string name, SwitchConfig config = {});
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Attaches one side of a link to the next free switch port; the switch
  // becomes the sink of that port. Returns the port index.
  int attach(LinkPort& port);

  int num_ports() const { return static_cast<int>(ports_.size()); }
  const SwitchStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  const SwitchConfig& config() const { return config_; }

  // Installs a static FIB entry: pinned (never aged or evicted), as a
  // topology builder does for fabrics that run with learning off. Returns
  // false if the probe window is already full of pinned entries.
  bool preload(const net::MacAddress& mac, int port);

  // Registers forwarding counters plus a per-port egress queue-depth gauge
  // ("switch.egress_queue_depth"{...,port=N}) for every currently attached
  // port. Call after the topology is built. Deliberately does NOT include
  // the FIB counters (see register_fib_metrics): the paper figures sample
  // this metric set into timelines, and their artifacts are a byte-identity
  // regression gate.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

  // FIB occupancy/eviction/no-route counters plus the table's memory
  // footprint ("switch.fib_*"). Opt-in for fleet benches.
  void register_fib_metrics(telemetry::MetricRegistry& registry,
                            const std::string& labels) const;

  // Learned/preloaded port for a MAC, or -1 (exposed for tests).
  int lookup(const net::MacAddress& mac) const;

  // Live (non-empty) FIB entries.
  std::size_t fib_size() const { return fib_live_; }
  // Heap footprint of the FIB slot array.
  std::size_t fib_memory_bytes() const { return fib_.capacity() * sizeof(FibEntry); }

 private:
  struct PortSink;

  // Linear-probe window: how many slots past the home slot are examined
  // before the stalest one is evicted. Small and fixed so lookup cost is
  // bounded even when a flood saturates the table.
  static constexpr std::size_t kProbeWindow = 8;

  struct FibEntry {
    std::uint64_t key = 0;  // MacAddress::to_u64() + 1; 0 = empty slot
    std::int32_t port = -1;
    bool pinned = false;
    sim::TimePoint learned;
  };

  void handle_frame(int ingress, net::Packet pkt);
  void forward(int egress, net::Packet pkt);
  void learn(const net::MacAddress& mac, int port);
  std::size_t home_slot(std::uint64_t key) const;

  sim::Simulation& sim_;
  std::string name_;
  SwitchConfig config_;
  std::vector<LinkPort*> ports_;
  std::vector<std::unique_ptr<PortSink>> sinks_;
  std::vector<FibEntry> fib_;
  std::size_t fib_mask_ = 0;
  std::size_t fib_live_ = 0;
  SwitchStats stats_;
};

}  // namespace barb::link
