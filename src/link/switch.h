// Store-and-forward learning Ethernet switch (the testbed's 3COM 3C16734A).
//
// Frames arrive fully serialized (the Link model delivers whole frames), are
// looked up in the learned MAC table after a small forwarding latency, and
// are queued on the egress LinkPort. Unknown destinations and broadcasts
// flood to all other ports. The paper verified the switch itself was not the
// bottleneck; our model preserves that property (forwarding capacity is
// per-port line rate).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "link/link.h"
#include "net/mac_address.h"
#include "sim/simulation.h"

namespace barb::link {

struct SwitchConfig {
  sim::Duration forwarding_delay = sim::Duration::microseconds(4);
  sim::Duration mac_table_aging = sim::Duration::seconds(300);
};

struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t flooded = 0;   // unknown unicast / broadcast
  std::uint64_t filtered = 0;  // destination learned on the ingress port
};

class Switch {
 public:
  Switch(sim::Simulation& sim, std::string name, SwitchConfig config = {});
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Attaches one side of a link to the next free switch port; the switch
  // becomes the sink of that port. Returns the port index.
  int attach(LinkPort& port);

  int num_ports() const { return static_cast<int>(ports_.size()); }
  const SwitchStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  // Registers forwarding counters plus a per-port egress queue-depth gauge
  // ("switch.egress_queue_depth"{...,port=N}) for every currently attached
  // port. Call after the topology is built.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

  // Learned port for a MAC, or -1 (exposed for tests).
  int lookup(const net::MacAddress& mac) const;

 private:
  struct PortSink;

  void handle_frame(int ingress, net::Packet pkt);
  void forward(int egress, net::Packet pkt);

  struct MacEntry {
    int port;
    sim::TimePoint learned;
  };

  sim::Simulation& sim_;
  std::string name_;
  SwitchConfig config_;
  std::vector<LinkPort*> ports_;
  std::vector<std::unique_ptr<PortSink>> sinks_;
  std::unordered_map<net::MacAddress, MacEntry> mac_table_;
  SwitchStats stats_;
};

}  // namespace barb::link
