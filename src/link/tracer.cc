#include "link/tracer.h"

#include <algorithm>
#include <cstdio>

#include "net/frame_view.h"

namespace barb::link {

namespace {

// pcap is little-endian when written with the standard magic.
void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  le16(out, static_cast<std::uint16_t>(v));
  le16(out, static_cast<std::uint16_t>(v >> 16));
}

}  // namespace

std::vector<std::uint8_t> FrameTap::to_pcap() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + frames_.size() * 80);

  // Global header.
  le32(out, 0xa1b2c3d4);  // magic (microsecond timestamps)
  le16(out, 2);           // version major
  le16(out, 4);           // version minor
  le32(out, 0);           // thiszone
  le32(out, 0);           // sigfigs
  le32(out, 65535);       // snaplen
  le32(out, 1);           // LINKTYPE_ETHERNET

  for (const auto& frame : frames_) {
    const std::int64_t ns = frame.at.ns();
    le32(out, static_cast<std::uint32_t>(ns / 1'000'000'000));
    le32(out, static_cast<std::uint32_t>(ns % 1'000'000'000 / 1000));
    le32(out, static_cast<std::uint32_t>(frame.data.size()));  // captured
    le32(out, static_cast<std::uint32_t>(frame.data.size()));  // original
    out.insert(out.end(), frame.data.begin(), frame.data.end());
  }
  return out;
}

std::string format_trace_line(const CapturedFrame& frame, const std::string& port_name,
                              const TraceVerdictFn& verdict) {
  std::string line = std::to_string(frame.at.ns());
  line += ' ';
  line += port_name;

  const auto view = net::FrameView::parse(frame.data);
  if (!view) {
    line += " malformed len=" + std::to_string(frame.data.size());
    return line;
  }
  if (!view->ip) {
    char buf[16];
    std::snprintf(buf, sizeof buf, " eth=0x%04x", view->eth.ethertype);
    line += buf;
    line += " len=" + std::to_string(frame.data.size());
    return line;
  }

  std::uint16_t src_port = 0, dst_port = 0;
  if (view->tcp) {
    line += " tcp";
    src_port = view->tcp->src_port;
    dst_port = view->tcp->dst_port;
  } else if (view->udp) {
    line += " udp";
    src_port = view->udp->src_port;
    dst_port = view->udp->dst_port;
  } else if (view->icmp) {
    line += " icmp";
  } else if (view->vpg) {
    line += " vpg";
  } else {
    line += " proto=" + std::to_string(view->ip->protocol);
  }

  line += ' ' + view->ip->src.to_string() + ':' + std::to_string(src_port) +
          " > " + view->ip->dst.to_string() + ':' + std::to_string(dst_port);
  line += " len=" + std::to_string(frame.data.size());

  if (view->tcp) {
    std::string flags;
    if (view->tcp->syn()) flags += 'S';
    if (view->tcp->fin()) flags += 'F';
    if (view->tcp->rst()) flags += 'R';
    if (view->tcp->psh()) flags += 'P';
    if (view->tcp->ack_flag()) flags += 'A';
    if (!flags.empty()) line += " [" + flags + ']';
  } else if (view->icmp) {
    line += " type=" + std::to_string(view->icmp->type);
  } else if (view->vpg) {
    line += " vpg_id=" + std::to_string(view->vpg->vpg_id);
  }

  if (verdict) {
    const std::string v = verdict(frame, *view);
    if (!v.empty()) line += " verdict=" + v;
  }
  return line;
}

std::string FrameTap::to_text(const std::string& port_name,
                              const TraceVerdictFn& verdict) const {
  std::string out;
  for (const auto& frame : frames_) {
    out += format_trace_line(frame, port_name, verdict);
    out += '\n';
  }
  return out;
}

std::string merged_trace_text(
    const std::vector<std::pair<std::string, const FrameTap*>>& taps,
    const TraceVerdictFn& verdict) {
  // (time, tap index, frame index): ties resolve by tap order then capture
  // order, keeping the dump byte-stable run to run.
  struct Entry {
    std::int64_t ns;
    std::size_t tap;
    std::size_t idx;
  };
  std::vector<Entry> order;
  for (std::size_t t = 0; t < taps.size(); ++t) {
    const auto& frames = taps[t].second->frames();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      order.push_back(Entry{frames[i].at.ns(), t, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.ns != b.ns) return a.ns < b.ns;
    if (a.tap != b.tap) return a.tap < b.tap;
    return a.idx < b.idx;
  });

  std::string out;
  for (const auto& e : order) {
    out += format_trace_line(taps[e.tap].second->frames()[e.idx], taps[e.tap].first,
                             verdict);
    out += '\n';
  }
  return out;
}

bool FrameTap::write_pcap(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto bytes = to_pcap();
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace barb::link
