#include "link/tracer.h"

#include <cstdio>

namespace barb::link {

namespace {

// pcap is little-endian when written with the standard magic.
void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  le16(out, static_cast<std::uint16_t>(v));
  le16(out, static_cast<std::uint16_t>(v >> 16));
}

}  // namespace

std::vector<std::uint8_t> FrameTap::to_pcap() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + frames_.size() * 80);

  // Global header.
  le32(out, 0xa1b2c3d4);  // magic (microsecond timestamps)
  le16(out, 2);           // version major
  le16(out, 4);           // version minor
  le32(out, 0);           // thiszone
  le32(out, 0);           // sigfigs
  le32(out, 65535);       // snaplen
  le32(out, 1);           // LINKTYPE_ETHERNET

  for (const auto& frame : frames_) {
    const std::int64_t ns = frame.at.ns();
    le32(out, static_cast<std::uint32_t>(ns / 1'000'000'000));
    le32(out, static_cast<std::uint32_t>(ns % 1'000'000'000 / 1000));
    le32(out, static_cast<std::uint32_t>(frame.data.size()));  // captured
    le32(out, static_cast<std::uint32_t>(frame.data.size()));  // original
    out.insert(out.end(), frame.data.begin(), frame.data.end());
  }
  return out;
}

bool FrameTap::write_pcap(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto bytes = to_pcap();
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace barb::link
