#include "link/fault_injector.h"

#include <utility>
#include <vector>

namespace barb::link {

void FaultInjector::on_wire_transit(LinkPort& port, net::Packet pkt,
                                    sim::Duration base_delay) {
  ++stats_.frames;

  // Loss decisions first: a lost frame consumes no further draws, keeping
  // the stream cheap under heavy loss. i.i.d. loss, then the burst chain.
  if (profile_.loss > 0 && rng_.bernoulli(profile_.loss)) {
    ++stats_.lost_random;
    return;
  }
  if (profile_.ge_p_good_to_bad > 0 || profile_.ge_p_bad_to_good > 0 ||
      profile_.ge_loss_good > 0 || profile_.ge_loss_bad > 0) {
    if (ge_bad_) {
      if (rng_.bernoulli(profile_.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.bernoulli(profile_.ge_p_good_to_bad)) ge_bad_ = true;
    }
    const double p = ge_bad_ ? profile_.ge_loss_bad : profile_.ge_loss_good;
    if (p > 0 && rng_.bernoulli(p)) {
      ++stats_.lost_burst;
      return;
    }
  }

  if (profile_.corruption > 0 && pkt.size() > 0 &&
      rng_.bernoulli(profile_.corruption)) {
    // Frame buffers are immutable and may be shared (a switch flood holds
    // refcounts); corruption rebuilds the packet around a mutated copy.
    std::vector<std::uint8_t> bytes = pkt.copy_bytes();
    const std::size_t offset = rng_.uniform(bytes.size());
    bytes[offset] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
    ++stats_.corrupted;
    pkt = net::Packet{std::move(bytes), pkt.created, pkt.id};
  }

  sim::Duration delay = base_delay;
  if (profile_.jitter_max > sim::Duration()) {
    const auto extra = sim::Duration::nanoseconds(static_cast<std::int64_t>(
        rng_.uniform_real() * static_cast<double>(profile_.jitter_max.ns())));
    if (extra > sim::Duration()) ++stats_.jittered;
    delay += extra;
  }
  if (profile_.reorder > 0 && rng_.bernoulli(profile_.reorder)) {
    const int window = profile_.reorder_window < 1 ? 1 : profile_.reorder_window;
    delay += profile_.reorder_hold *
             static_cast<std::int64_t>(1 + rng_.uniform(
                 static_cast<std::uint64_t>(window)));
    ++stats_.reordered;
  }

  if (profile_.duplication > 0 && rng_.bernoulli(profile_.duplication)) {
    // The copy trails the original by one wire occupancy, like a frame
    // transmitted twice back to back. Copying a Packet is a refcount bump.
    ++stats_.duplicated;
    port.schedule_delivery(pkt, delay + port.frame_time(pkt.size()));
  }
  port.schedule_delivery(std::move(pkt), delay);
}

void FaultInjector::register_metrics(telemetry::MetricRegistry& registry,
                                     const std::string& labels) const {
  auto counter = [&](const char* name, const std::uint64_t* field) {
    registry.counter_fn(name, labels,
                        [field] { return static_cast<double>(*field); });
  };
  counter("fault.frames", &stats_.frames);
  counter("fault.lost_random", &stats_.lost_random);
  counter("fault.lost_burst", &stats_.lost_burst);
  counter("fault.corrupted", &stats_.corrupted);
  counter("fault.duplicated", &stats_.duplicated);
  counter("fault.reordered", &stats_.reordered);
  counter("fault.jittered", &stats_.jittered);
}

}  // namespace barb::link
