#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan + UBSan.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default: build-asan)
#
# Any sanitizer report fails the run: halt_on_error aborts the offending
# test, and -fno-sanitize-recover=all (set by the ASAN CMake option) turns
# every UBSan diagnostic into an abort as well.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

# detect_leaks=0: applications legitimately capture their connection's
# shared_ptr in its own on_data/on_closed callbacks, a pre-existing
# TcpConnection ownership cycle LeakSanitizer reports at process exit (it
# predates the ASAN wiring; verified identical at the seed revision). The
# checks that guard the refcounted frame-buffer code — use-after-free,
# buffer overflow, UB — are unaffected. See ROADMAP.md.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DASAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
