#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan + UBSan.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default: build-asan)
#
# Any sanitizer report fails the run: halt_on_error aborts the offending
# test, and -fno-sanitize-recover=all (set by the ASAN CMake option) turns
# every UBSan diagnostic into an abort as well.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

# detect_leaks=1: the TcpConnection callback ownership cycle that used to
# force this off is fixed (to_closed()/~TcpLayer() clear the callbacks; see
# tests/stack/tcp_leak_test.cc for the regression test), so LeakSanitizer
# runs at full strength.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DASAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
