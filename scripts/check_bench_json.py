#!/usr/bin/env python3
"""Validate a BENCH_*.json bench artifact against the barb-bench-v1 schema.

Usage: check_bench_json.py FILE [FILE ...] [--require-timeline]
                           [--require-series=NAME ...]
       check_bench_json.py --compare FILE_A FILE_B

With --compare, both files must validate AND be byte-identical — the
determinism gate for parallel sweeps (a bench run with --jobs N must write
exactly the artifact its --jobs 1 run writes). On mismatch the first
differing JSON path is reported to help localize which point diverged.

Checks, per file:
  * top level is an object with schema == "barb-bench-v1", a non-empty
    "figure" string, and "meta"/"points"/"timelines" of the right types;
  * every point has a non-empty "series" string and finite numeric "x"/"y"
    (optional numeric "stddev");
  * every timeline has a "scenario" string and a "recording" whose "t" and
    per-series "values" arrays are numeric and equal-length, with "kind" in
    {counter, gauge, histogram};
  * with --require-timeline, at least one timeline with at least one sample;
  * with --require-series=NAME (repeatable), NAME must appear either as a
    point series or as a recorded timeline metric in every file.

Exit status 0 if every file passes, 1 otherwise (details on stderr).
"""

import json
import math
import sys

KINDS = {"counter", "gauge", "histogram"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def check_points(path, points):
    if not isinstance(points, list):
        return fail(path, '"points" is not an array')
    for i, p in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(p, dict):
            return fail(path, f"{where} is not an object")
        if not isinstance(p.get("series"), str) or not p["series"]:
            return fail(path, f'{where} lacks a non-empty "series"')
        for k in ("x", "y"):
            if not is_num(p.get(k)):
                return fail(path, f'{where} field "{k}" is not a finite number')
        if "stddev" in p and not is_num(p["stddev"]):
            return fail(path, f'{where} field "stddev" is not a finite number')
    return True


def check_timelines(path, timelines):
    if not isinstance(timelines, list):
        return fail(path, '"timelines" is not an array')
    for i, tl in enumerate(timelines):
        where = f"timelines[{i}]"
        if not isinstance(tl, dict):
            return fail(path, f"{where} is not an object")
        if not isinstance(tl.get("scenario"), str) or not tl["scenario"]:
            return fail(path, f'{where} lacks a non-empty "scenario"')
        rec = tl.get("recording")
        if not isinstance(rec, dict):
            return fail(path, f'{where} lacks a "recording" object')
        if not is_num(rec.get("interval_s")) or rec["interval_s"] <= 0:
            return fail(path, f'{where} "interval_s" is not a positive number')
        t = rec.get("t")
        if not isinstance(t, list) or not all(is_num(v) for v in t):
            return fail(path, f'{where} "t" is not a numeric array')
        if t != sorted(t):
            return fail(path, f'{where} "t" is not ascending')
        series = rec.get("series")
        if not isinstance(series, list):
            return fail(path, f'{where} "series" is not an array')
        for j, s in enumerate(series):
            sw = f"{where}.series[{j}]"
            if not isinstance(s, dict):
                return fail(path, f"{sw} is not an object")
            if not isinstance(s.get("metric"), str) or not s["metric"]:
                return fail(path, f'{sw} lacks a non-empty "metric"')
            if not isinstance(s.get("labels"), str):
                return fail(path, f'{sw} lacks a "labels" string')
            if s.get("kind") not in KINDS:
                return fail(path, f'{sw} "kind" {s.get("kind")!r} not in {sorted(KINDS)}')
            values = s.get("values")
            if not isinstance(values, list) or not all(is_num(v) for v in values):
                return fail(path, f'{sw} "values" is not a numeric array')
            if len(values) != len(t):
                return fail(
                    path,
                    f'{sw} has {len(values)} values for {len(t)} timestamps',
                )
    return True


def check_series(path, doc, required):
    """Every required name must be a point series or a timeline metric."""
    present = {p["series"] for p in doc["points"]}
    for tl in doc["timelines"]:
        present.update(s["metric"] for s in tl["recording"]["series"])
    ok = True
    for name in required:
        if name not in present:
            ok = fail(path, f'required series {name!r} not found '
                            f"(have: {', '.join(sorted(present)) or 'none'})")
    return ok


def check_file(path, require_timeline, require_series=()):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot parse: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != "barb-bench-v1":
        return fail(path, f'schema {doc.get("schema")!r} != "barb-bench-v1"')
    if not isinstance(doc.get("figure"), str) or not doc["figure"]:
        return fail(path, 'lacks a non-empty "figure"')
    if not isinstance(doc.get("meta"), dict):
        return fail(path, '"meta" is not an object')
    if not check_points(path, doc.get("points")):
        return False
    if not check_timelines(path, doc.get("timelines")):
        return False
    if require_timeline:
        timelines = doc["timelines"]
        if not timelines:
            return fail(path, "has no timelines (--require-timeline)")
        if all(not tl["recording"]["t"] for tl in timelines):
            return fail(path, "timelines contain no samples (--require-timeline)")
    if require_series and not check_series(path, doc, require_series):
        return False
    n_series = sum(len(tl["recording"]["series"]) for tl in doc["timelines"])
    print(
        f"{path}: ok ({len(doc['points'])} points, {len(doc['timelines'])} "
        f"timelines, {n_series} series)"
    )
    return True


def first_json_difference(a, b, path="$"):
    """Returns a human-readable locator of the first structural difference."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                return f"{path}.{k}: only in second file"
            if k not in b:
                return f"{path}.{k}: only in first file"
            d = first_json_difference(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (va, vb) in enumerate(zip(a, b)):
            d = first_json_difference(va, vb, f"{path}[{i}]")
            if d:
                return d
        return None
    return None if a == b else f"{path}: {a!r} != {b!r}"


def compare_files(path_a, path_b):
    if not check_file(path_a, False) or not check_file(path_b, False):
        return False
    with open(path_a, "rb") as f:
        raw_a = f.read()
    with open(path_b, "rb") as f:
        raw_b = f.read()
    if raw_a == raw_b:
        print(f"{path_a} == {path_b} ({len(raw_a)} bytes, identical)")
        return True
    diff = first_json_difference(
        json.loads(raw_a.decode("utf-8")), json.loads(raw_b.decode("utf-8"))
    )
    return fail(
        path_b,
        "differs from " + path_a
        + (f" at {diff}" if diff else " (byte-level only: whitespace/key order)"),
    )


def main(argv):
    require_timeline = "--require-timeline" in argv
    require_series = [
        a.split("=", 1)[1] for a in argv if a.startswith("--require-series=")
    ]
    compare = "--compare" in argv
    unknown = [
        a for a in argv
        if a.startswith("--") and a not in ("--require-timeline", "--compare")
        and not a.startswith("--require-series=")
    ]
    if unknown:
        print(f"unknown option(s): {' '.join(unknown)}", file=sys.stderr)
        return 1
    files = [a for a in argv if not a.startswith("--")]
    if compare:
        if len(files) != 2:
            print("--compare takes exactly two files", file=sys.stderr)
            return 1
        return 0 if compare_files(files[0], files[1]) else 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 1
    ok = all([check_file(f, require_timeline, require_series) for f in files])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
