# Renders the paper's figures from the benchmark CSV exports.
#
#   mkdir -p results
#   BARB_BENCH_CSV_DIR=results ./build/bench/fig2_bandwidth
#   BARB_BENCH_CSV_DIR=results ./build/bench/fig3a_flood_bandwidth
#   BARB_BENCH_CSV_DIR=results ./build/bench/fig3b_min_flood_rate
#   gnuplot -e "dir='results'" scripts/plot_figures.gp
#
# Produces fig2.png, fig3a.png, fig3b.png alongside the CSVs.
if (!exists("dir")) dir = "results"

set datafile separator ","
set terminal pngcairo size 900,600 font "sans,11"
set key outside right
set grid

set output dir."/fig2.png"
set title "Figure 2: Available Bandwidth vs. Rule-Set Depth"
set xlabel "Firewall rules traversed before action"
set ylabel "Available bandwidth (Mbps)"
set yrange [0:100]
plot dir."/fig2_rules.csv" using 1:2 skip 1 with linespoints title "No Firewall", \
     ''                    using 1:3 skip 1 with linespoints title "iptables", \
     ''                    using 1:4 skip 1 with linespoints title "EFW", \
     ''                    using 1:5 skip 1 with linespoints title "ADF"

set output dir."/fig3a.png"
set title "Figure 3(a): Available Bandwidth During Packet Flood (1 rule)"
set xlabel "Flood rate (packets/s)"
set ylabel "Available bandwidth (Mbps)"
set yrange [0:100]
plot dir."/fig3a.csv" using 1:2 skip 1 with linespoints title "No Firewall", \
     ''               using 1:3 skip 1 with linespoints title "iptables", \
     ''               using 1:4 skip 1 with linespoints title "EFW", \
     ''               using 1:5 skip 1 with linespoints title "ADF", \
     ''               using 1:6 skip 1 with linespoints title "ADF (VPG)"

# Figure 3(b) ships row-per-series (one row per firewall configuration, one
# column per depth), which gnuplot cannot consume directly; pivot it first:
#
#   awk -F, 'NR==1{split($0,d,","); next}
#            {gsub(/ \[LOCKUP\]/,""); for(i=2;i<=NF;i++)
#              print substr(d[i],3), $i > "results/fig3b_"NR".dat"}' \
#       results/fig3b.csv
#
# then plot the per-series .dat files:
#   plot "results/fig3b_2.dat" with linespoints title "EFW (Allow)", ...
