#!/usr/bin/env bash
# Configure, build, and run the threading-sensitive tests under
# ThreadSanitizer: the sweep runner (thread pool + result slots), the
# buffer pool (thread-local instances with plain refcounts — TSan proves the
# pools really are disjoint), and the classifier/flow-cache suites (each
# simulation owns its compiled structure and cache, but sweep tasks build
# them on pool threads — TSan proves they really are shared-nothing).
# The fleet bench then runs at --jobs 4: each sweep task builds a full
# multi-switch fabric (TopologyBuilder, shared AddressDirectory, bounded
# FIBs) and drives batched-link simulations on a pool thread, proving the
# fleet-scale path is shared-nothing too.
#
# The sharded DES engine runs last: fleet_goodput and the fuzzer's
# shard-identity oracle under BARB_DES_SHARDS=4, plus the parallel-engine
# unit tests — TSan checks the horizon/mailbox protocol itself (release
# horizon stores vs acquire bound reads, SPSC ring indices, park/wake
# handshakes) on real cross-shard traffic.
#
# Usage: scripts/ci_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

cmake -B "$BUILD_DIR" -S . -DTSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target core_sweep_runner_test net_buffer_pool_stress_test \
  firewall_classifier_test firewall_flow_cache_test fleet_goodput \
  sim_parallel_engine_test fuzz_main
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'SweepRunner|DerivePointSeed|ResolveJobs|JobsFromCli|BufferPoolThreading|CompiledClassifier|FlowCache'
BARB_BENCH_FAST=1 "$BUILD_DIR"/bench/fleet_goodput --jobs 4

# Conservative parallel DES engine under TSan: unit suite, the fleet bench
# with the engine attached (4 shard workers per point), and fuzzer seeds
# whose fabric family replays every scenario serial vs sharded.
"$BUILD_DIR"/tests/sim_parallel_engine_test
BARB_BENCH_FAST=1 BARB_DES_SHARDS=4 "$BUILD_DIR"/bench/fleet_goodput
BARB_DES_SHARDS=4 "$BUILD_DIR"/tests/fuzz_main --seeds 5

# Policy-family seeds at --jobs 4: corpus generation, the pairwise analyzer,
# and the compiled/flow-cache oracle all run on pool threads — TSan proves
# the policygen path is shared-nothing too.
"$BUILD_DIR"/tests/fuzz_main --family policy --seeds 8 --jobs 4
