#!/usr/bin/env bash
# Run the randomized scenario fuzzer (tests/fuzz/) under sanitizers.
#
#   1. ASan + UBSan build, 100 sequential seeds — memory safety and UB over
#      randomized topologies, rule-sets, traffic mixes, and fault profiles.
#      Each seed's differential oracle is three-way: naive reference vs the
#      linear matcher vs the compiled classifier (plus the flow-cache path,
#      generation-bumped across rule-set rebuilds), VPG frames included.
#   2. Short TSan pass with --jobs 4 — seeds are shared-nothing simulations
#      distributed over the sweep-runner thread pool; TSan proves it.
#
# A failing seed prints itself and writes fuzz_failure_<seed>.json; replay
# with `fuzz_main --seed N` (or --replay on the json) in either build.
#
# Usage: scripts/ci_fuzz.sh [seeds] [base-seed]   (default: 100 seeds from 1)
set -euo pipefail

cd "$(dirname "$0")/.."
SEEDS="${1:-100}"
BASE="${2:-1}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

echo "=== fuzz under ASan/UBSan: ${SEEDS} seeds from ${BASE} ==="
cmake -B build-asan -S . -DASAN=ON
cmake --build build-asan -j "$(nproc)" --target fuzz_main
build-asan/tests/fuzz_main --seeds "$SEEDS" --base "$BASE"

echo "=== policy family under ASan/UBSan: ${SEEDS} seeds + regression corpus ==="
# Realistic policy corpora (generator -> analyzer ground truth -> three-way
# match oracle) with the curated shape-coverage seeds appended.
build-asan/tests/fuzz_main --family policy --seeds "$SEEDS" --base "$BASE"
build-asan/tests/fuzz_main --family policy \
  --seed-file tests/data/policy_fuzz_seeds.txt

echo "=== fuzz under TSan: 12 seeds from ${BASE}, --jobs 4 ==="
cmake -B build-tsan -S . -DTSAN=ON
cmake --build build-tsan -j "$(nproc)" --target fuzz_main
build-tsan/tests/fuzz_main --seeds 12 --base "$BASE" --jobs 4

echo "ci_fuzz: all seeds passed"
