// Engine microbenchmarks (google-benchmark): the hot paths whose absolute
// host-side speed bounds how fast the simulation itself runs.
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/sha256.h"
#include "firewall/rule_set.h"
#include "net/frame_view.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"
#include "stack/tcp.h"
#include "testbed_for_bench.h"

namespace {

using namespace barb;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(sim::Duration::nanoseconds(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1460)->Arg(16384);

void BM_AeadSeal(benchmark::State& state) {
  crypto::Aead::Key key{};
  crypto::Aead::Nonce nonce{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aead::seal(key, nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(60)->Arg(1460);

void BM_AeadOpen(benchmark::State& state) {
  crypto::Aead::Key key{};
  crypto::Aead::Nonce nonce{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x42);
  const auto sealed = crypto::Aead::seal(key, nonce, {}, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aead::open(key, nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(60)->Arg(1460);

std::vector<std::uint8_t> sample_frame() {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 5001;
  tcp.flags = net::TcpFlags::kAck;
  const std::vector<std::uint8_t> payload(1400, 0x5a);
  return net::build_tcp_frame(ep, tcp, payload);
}

void BM_FrameParse(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::FrameView::parse(frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameParse);

void BM_RuleSetMatch(benchmark::State& state) {
  firewall::RuleSet rs;
  for (int i = 0; i < state.range(0) - 1; ++i) {
    firewall::Rule padding;
    padding.action = firewall::RuleAction::kDeny;
    padding.src_net = net::Ipv4Address(192, 168, 0, static_cast<std::uint8_t>(i + 1));
    padding.src_prefix = 32;
    rs.add(padding);
  }
  firewall::Rule allow;
  allow.action = firewall::RuleAction::kAllow;
  rs.add(allow);

  const auto frame = sample_frame();
  const auto view = net::FrameView::parse(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.match(*view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleSetMatch)->Arg(1)->Arg(16)->Arg(64);

// Whole-simulation speed: events per wall-clock second while a TCP bulk
// transfer saturates the simulated 100 Mbps link.
void BM_SimulatedTcpSecond(benchmark::State& state) {
  for (auto _ : state) {
    const std::uint64_t events = barb::benchutil::run_one_simulated_second();
    state.counters["sim_events"] = static_cast<double>(events);
  }
}
BENCHMARK(BM_SimulatedTcpSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
