// Micro-benchmark: per-frame memory cost of the zero-copy frame path.
//
// Drives the testbed's flood path (generator -> switch -> target NIC
// firewall) and reads the frame buffer pool's telemetry over the steady
// state. Before the pooled FrameBuffer refactor, every buffer acquisition
// was a fresh std::vector heap allocation and every broadcast/requeue hop
// re-copied the bytes; the pool counts those would-be allocations as
// "acquisitions" while only misses/fallbacks/adoptions actually allocate.
// The headline number is the reduction factor
//     acquisitions_per_frame / allocations_per_frame
// which the refactor is required to hold at >= 2x; the bench exits nonzero
// below that, so the ctest smoke run doubles as a regression gate.
#include <chrono>

#include "bench_common.h"
#include "net/frame_buffer.h"

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Micro-benchmark: zero-copy frame path",
                      "per-frame buffer pool telemetry (not a paper figure)");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("microbench_framepath");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("flood", "udp_min_frame");

  const double rate_pps = 30000;
  sim::Simulation sim(opt.seed);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdf;
  cfg.action_rule_depth = 16;
  Testbed tb(sim, cfg);
  tb.settle();

  // Pool counters sampled on the sim clock for the artifact's timeline.
  telemetry::MetricRegistry registry;
  Testbed::register_pool_metrics(registry);
  telemetry::TimeSeriesProbe probe(sim, registry, sim::Duration::milliseconds(50));

  apps::FloodConfig fc;
  fc.target = tb.addresses().target;
  fc.target_port = kFloodPort;
  fc.type = apps::FloodType::kUdp;
  fc.rate_pps = rate_pps;
  apps::FloodGenerator generator(tb.attacker(), fc);
  generator.start();

  // Warm-up: let the pool freelists fill and the flood reach steady state.
  sim.run_for(opt.flood_warmup);

  auto& pool = net::BufferPool::instance();
  const net::BufferPoolStats before = pool.stats();
  const std::uint64_t frames_before =
      tb.target_firewall()->fw_stats().frames_processed;
  probe.start();
  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_for(opt.window);
  const auto wall_end = std::chrono::steady_clock::now();
  probe.stop();
  generator.stop();
  const net::BufferPoolStats after = pool.stats();
  const std::uint64_t frames =
      tb.target_firewall()->fw_stats().frames_processed - frames_before;

  if (frames == 0) {
    std::fprintf(stderr, "no flood frames were processed; bench is broken\n");
    return 1;
  }
  const auto delta = [&](std::uint64_t net::BufferPoolStats::* field) {
    return static_cast<double>(after.*field - before.*field);
  };
  const double acquisitions = delta(&net::BufferPoolStats::acquisitions);
  const double allocations =
      static_cast<double>(after.allocations() - before.allocations());
  const double parses = delta(&net::BufferPoolStats::parses);
  const double parse_hits = delta(&net::BufferPoolStats::parse_hits);
  const double hits = delta(&net::BufferPoolStats::pool_hits);
  const double n = static_cast<double>(frames);
  // Pre-refactor baseline: one heap allocation per acquisition, by
  // construction (every buffer need was a fresh std::vector).
  const double acq_per_frame = acquisitions / n;
  const double alloc_per_frame = allocations / n;
  const double reduction =
      allocations > 0 ? acquisitions / allocations
                      : acquisitions;  // fully amortized: report the bound
  const double wall_ns_per_frame =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count()) /
      n;

  TextTable table({"Metric", "Value"});
  table.add_row({"flood frames processed", fmt_int(n)});
  table.add_row({"buffer acquisitions / frame", fmt(acq_per_frame)});
  table.add_row({"heap allocations / frame", fmt(alloc_per_frame)});
  table.add_row({"allocation reduction factor", fmt(reduction)});
  table.add_row({"pool hit rate", fmt(acquisitions > 0 ? hits / acquisitions : 0)});
  table.add_row({"header parses / frame", fmt(parses / n)});
  table.add_row(
      {"parse cache hit rate",
       fmt(parses + parse_hits > 0 ? parse_hits / (parses + parse_hits) : 0)});
  table.add_row({"wall ns / frame", fmt(wall_ns_per_frame)});
  std::printf("%s\n", table.to_string().c_str());
  bench::maybe_write_csv("microbench_framepath", table);

  artifact.add_point("acquisitions_per_frame", rate_pps, acq_per_frame);
  artifact.add_point("allocations_per_frame", rate_pps, alloc_per_frame);
  artifact.add_point("alloc_reduction_factor", rate_pps, reduction);
  artifact.add_point("pool_hit_rate", rate_pps,
                     acquisitions > 0 ? hits / acquisitions : 0);
  artifact.add_point("parses_per_frame", rate_pps, parses / n);
  artifact.add_point("parse_cache_hit_rate", rate_pps,
                     parses + parse_hits > 0 ? parse_hits / (parses + parse_hits)
                                             : 0);
  artifact.add_point("wall_ns_per_frame", rate_pps, wall_ns_per_frame);
  artifact.add_recording("adf flood_30kpps pool", probe.recording());
  bench::write_artifact(artifact);

  std::printf(
      "Steady-state contract: every buffer need used to be a heap\n"
      "allocation; with the pool, recycled buffers and shared broadcast\n"
      "refs must cut allocations per delivered flood frame by >= 2x.\n\n");
  if (reduction < 2.0) {
    std::fprintf(stderr,
                 "FAIL: allocation reduction factor %.2f < 2.0 "
                 "(acq/frame %.3f, alloc/frame %.3f)\n",
                 reduction, acq_per_frame, alloc_per_frame);
    return 1;
  }
  std::printf("PASS: allocation reduction factor %.2f >= 2.0\n", reduction);
  return 0;
}
