// iptables comparison sweep (Hoffman et al., cited by the paper for the
// software-firewall baseline): bandwidth and flood tolerance as the rule
// count grows to 100 — far past the EFW/ADF's 64-rule maximum.
//
// Shape to reproduce: no bandwidth loss at any depth up to 100 rules on a
// 100 Mbps network, and no achievable flood rate causes denial of service.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("iptables Sweep to 100 Rules",
                      "Hoffman et al. baseline used in sections 4.1-4.2");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("iptables_sweep");
  bench::set_common_meta(artifact, opt);

  // Grid: (depth x {clean, flooded}) bandwidth points.
  const int depths[] = {1, 8, 16, 32, 64, 100};
  std::vector<std::function<double(const SweepPoint&)>> tasks;
  for (int depth : depths) {
    for (bool flooded : {false, true}) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kIptables;
        cfg.action_rule_depth = depth;
        if (!flooded) {
          return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed))
              .mean();
        }
        FloodSpec flood;
        flood.rate_pps = 30000;
        return measure_bandwidth_under_flood(cfg, flood,
                                             bench::with_seed(opt, p.seed))
            .mean();
      });
    }
  }
  const auto bw = bench::run_sweep(runner, "iptables grid", std::move(tasks));

  TextTable table({"Rules", "Bandwidth (Mbps)", "Bandwidth @30kpps flood (Mbps)"});
  std::size_t slot = 0;
  for (int depth : depths) {
    const double clean = bw[slot++];
    const double flooded = bw[slot++];
    table.add_row({std::to_string(depth), fmt(clean), fmt(flooded)});
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::add_table_points(artifact, table);

  // Flood search at the deepest rule-set: there must be no DoS rate.
  std::vector<std::function<MinFloodResult(const SweepPoint&)>> dos_tasks;
  dos_tasks.push_back([=](const SweepPoint& p) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kIptables;
    cfg.action_rule_depth = 100;
    FloodSpec flood;
    return find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed),
                                   bench::bench_search_options());
  });
  const auto result =
      bench::run_sweep(runner, "iptables DoS search", std::move(dos_tasks))[0];
  artifact.set_meta("min_dos_rate_at_100_rules",
                    result.rate_pps ? *result.rate_pps : -1.0);
  bench::write_artifact(artifact);
  std::printf("Minimum DoS flood rate at 100 rules: %s (paper/Hoffman: none "
              "achievable)\n\n",
              result.rate_pps ? fmt_int(*result.rate_pps).c_str() : "none");
  return 0;
}
