// Ablation: decrypt-at-match vs. decrypt-always VPG processing.
//
// The paper infers from Figure 2 that "the ADF is able to avoid decrypting
// incoming packets until they reach the matching VPG rule" — inserting
// non-matching VPGs above the action rule barely moved throughput. This
// ablation runs the same VPG-depth sweep under both processing models to
// show what the measurement would have looked like if the card attempted
// decryption at every VPG rule it walked.
#include "bench_common.h"

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: VPG Crypto Placement",
                      "Ihde & Sanders, DSN 2006, section 4.1 (VPG inference)");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("ablation_vpg_crypto");
  bench::set_common_meta(artifact, opt);

  TextTable table({"VPGs", "decrypt-at-match (Mbps)", "decrypt-always (Mbps)"});
  for (int vpgs : {1, 2, 3, 4}) {
    TestbedConfig at_match;
    at_match.firewall = FirewallKind::kAdfVpg;
    at_match.action_rule_depth = vpgs;
    const double real = measure_available_bandwidth(at_match, opt).mean();

    TestbedConfig always = at_match;
    auto profile = firewall::adf_profile();
    profile.vpg_decrypt_always = true;
    always.profile_override = profile;
    const double naive = measure_available_bandwidth(always, opt).mean();

    artifact.add_point("decrypt-at-match (Mbps)", vpgs, real);
    artifact.add_point("decrypt-always (Mbps)", vpgs, naive);
    table.add_row({std::to_string(vpgs), fmt(real), fmt(naive)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::write_artifact(artifact);
  std::printf(
      "The decrypt-at-match column is nearly flat (the paper's observation);\n"
      "decrypt-always would fall steeply with every added non-matching VPG,\n"
      "which the paper's measurements rule out.\n\n");
  return 0;
}
