// Ablation: decrypt-at-match vs. decrypt-always VPG processing.
//
// The paper infers from Figure 2 that "the ADF is able to avoid decrypting
// incoming packets until they reach the matching VPG rule" — inserting
// non-matching VPGs above the action rule barely moved throughput. This
// ablation runs the same VPG-depth sweep under both processing models to
// show what the measurement would have looked like if the card attempted
// decryption at every VPG rule it walked.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: VPG Crypto Placement",
                      "Ihde & Sanders, DSN 2006, section 4.1 (VPG inference)");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("ablation_vpg_crypto");
  bench::set_common_meta(artifact, opt);

  // Grid: (vpgs x {at-match, always}) bandwidth points.
  const int vpg_counts[] = {1, 2, 3, 4};
  std::vector<std::function<double(const SweepPoint&)>> tasks;
  for (int vpgs : vpg_counts) {
    for (bool always : {false, true}) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kAdfVpg;
        cfg.action_rule_depth = vpgs;
        if (always) {
          auto profile = firewall::adf_profile();
          profile.vpg_decrypt_always = true;
          cfg.profile_override = profile;
        }
        return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed)).mean();
      });
    }
  }
  const auto results = bench::run_sweep(runner, "vpg-crypto grid", std::move(tasks));

  TextTable table({"VPGs", "decrypt-at-match (Mbps)", "decrypt-always (Mbps)"});
  std::size_t slot = 0;
  for (int vpgs : vpg_counts) {
    const double real = results[slot++];
    const double naive = results[slot++];
    artifact.add_point("decrypt-at-match (Mbps)", vpgs, real);
    artifact.add_point("decrypt-always (Mbps)", vpgs, naive);
    table.add_row({std::to_string(vpgs), fmt(real), fmt(naive)});
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::write_artifact(artifact);
  std::printf(
      "The decrypt-at-match column is nearly flat (the paper's observation);\n"
      "decrypt-always would fall steeply with every added non-matching VPG,\n"
      "which the paper's measurements rule out.\n\n");
  return 0;
}
