// Ablation: what if the EFW had kept pf-style flow state?
//
// The EFW/ADF are stateless packet filters — every frame walks the rule-set,
// which is the root of both Figure 2's depth penalty and Figure 3's flood
// economics. OpenBSD pf (Hartmeier, the paper's stateful software
// comparator) shows the alternative: established flows match in O(1). This
// ablation gives the EFW model a flow-state table and re-runs both
// experiments. The result is instructive: statefulness erases the depth
// penalty for legitimate traffic but barely moves the DoS threshold —
// flood packets are all first-packets, so they still pay (and charge the
// card) for the full walk.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: Stateless vs. Stateful NIC Filtering",
                      "Ihde & Sanders, DSN 2006 — EFW statelessness (sections 2, 4)");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("ablation_stateful_nic");
  bench::set_common_meta(artifact, opt);

  auto stateful_profile = firewall::efw_profile();
  stateful_profile.name = "EFW-stateful";
  stateful_profile.stateful = true;

  // Grid: (depth x {stateless, stateful}) bandwidth points.
  const int depths[] = {1, 16, 32, 48, 64};
  std::vector<std::function<double(const SweepPoint&)>> bw_tasks;
  for (int depth : depths) {
    for (bool stateful : {false, true}) {
      bw_tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kEfw;
        cfg.action_rule_depth = depth;
        if (stateful) cfg.profile_override = stateful_profile;
        return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed)).mean();
      });
    }
  }
  const auto bw = bench::run_sweep(runner, "stateful-nic bandwidth grid",
                                   std::move(bw_tasks));

  TextTable fig2({"Rules", "EFW stateless (Mbps)", "EFW stateful (Mbps)"});
  std::size_t slot = 0;
  for (int depth : depths) {
    const double stateless = bw[slot++];
    const double stateful = bw[slot++];
    artifact.add_point("EFW stateless (Mbps)", depth, stateless);
    artifact.add_point("EFW stateful (Mbps)", depth, stateful);
    fig2.add_row({std::to_string(depth), fmt(stateless), fmt(stateful)});
  }
  std::printf("%s\n", fig2.to_string().c_str());

  // Flood tolerance at depth 64 (allowed TCP data flood, spoofed source
  // ports -> every flood packet is a fresh flow).
  const auto search = bench::bench_search_options();
  std::vector<std::function<MinFloodResult(const SweepPoint&)>> dos_tasks;
  for (bool stateful : {false, true}) {
    dos_tasks.push_back([=](const SweepPoint& p) {
      FloodSpec flood;
      flood.type = apps::FloodType::kTcpData;
      flood.spoof_source = true;
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kEfw;
      cfg.action_rule_depth = 64;
      if (stateful) cfg.profile_override = stateful_profile;
      return find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed),
                                     search);
    });
  }
  const auto dos =
      bench::run_sweep(runner, "stateful-nic DoS searches", std::move(dos_tasks));
  const auto& stateless_dos = dos[0];
  const auto& stateful_dos = dos[1];

  TextTable fig3({"Model (64 rules, spoofed TCP flood)", "Min DoS rate (pps)"});
  fig3.add_row({"EFW stateless",
                stateless_dos.rate_pps ? fmt_int(*stateless_dos.rate_pps) : "none"});
  fig3.add_row({"EFW stateful",
                stateful_dos.rate_pps ? fmt_int(*stateful_dos.rate_pps) : "none"});
  std::printf("%s\n", fig3.to_string().c_str());
  if (stateless_dos.rate_pps) {
    artifact.add_point("EFW stateless min DoS (pps)", 64, *stateless_dos.rate_pps);
  }
  if (stateful_dos.rate_pps) {
    artifact.add_point("EFW stateful min DoS (pps)", 64, *stateful_dos.rate_pps);
  }
  bench::write_artifact(artifact);

  std::printf(
      "Statefulness flattens the Figure 2 curve (established flows skip the\n"
      "walk) but the Figure 3 threshold barely moves: every flood packet is a\n"
      "first-packet and still buys a full rule walk at minimum-frame prices.\n"
      "Flood tolerance needs admission control (see extension_flood_guard),\n"
      "not just faster classification of good traffic.\n\n");
  return 0;
}
