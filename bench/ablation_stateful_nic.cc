// Ablation: what if the EFW had kept pf-style flow state?
//
// The EFW/ADF are stateless packet filters — every frame walks the rule-set,
// which is the root of both Figure 2's depth penalty and Figure 3's flood
// economics. OpenBSD pf (Hartmeier, the paper's stateful software
// comparator) shows the alternative: established flows match in O(1). This
// ablation gives the EFW model a flow-state table and re-runs both
// experiments. The result is instructive: statefulness erases the depth
// penalty for legitimate traffic but barely moves the DoS threshold —
// flood packets are all first-packets, so they still pay (and charge the
// card) for the full walk.
#include "bench_common.h"

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: Stateless vs. Stateful NIC Filtering",
                      "Ihde & Sanders, DSN 2006 — EFW statelessness (sections 2, 4)");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("ablation_stateful_nic");
  bench::set_common_meta(artifact, opt);

  auto stateful_profile = firewall::efw_profile();
  stateful_profile.name = "EFW-stateful";
  stateful_profile.stateful = true;

  TextTable fig2({"Rules", "EFW stateless (Mbps)", "EFW stateful (Mbps)"});
  for (int depth : {1, 16, 32, 48, 64}) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kEfw;
    cfg.action_rule_depth = depth;
    const double stateless = measure_available_bandwidth(cfg, opt).mean();
    cfg.profile_override = stateful_profile;
    const double stateful = measure_available_bandwidth(cfg, opt).mean();
    artifact.add_point("EFW stateless (Mbps)", depth, stateless);
    artifact.add_point("EFW stateful (Mbps)", depth, stateful);
    fig2.add_row({std::to_string(depth), fmt(stateless), fmt(stateful)});
    std::fflush(stdout);
  }
  std::printf("%s\n", fig2.to_string().c_str());

  // Flood tolerance at depth 64 (allowed TCP data flood, spoofed source
  // ports -> every flood packet is a fresh flow).
  const auto search = bench::bench_search_options();
  FloodSpec flood;
  flood.type = apps::FloodType::kTcpData;
  flood.spoof_source = true;
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 64;
  const auto stateless_dos = find_min_dos_flood_rate(cfg, flood, opt, search);
  cfg.profile_override = stateful_profile;
  const auto stateful_dos = find_min_dos_flood_rate(cfg, flood, opt, search);

  TextTable fig3({"Model (64 rules, spoofed TCP flood)", "Min DoS rate (pps)"});
  fig3.add_row({"EFW stateless",
                stateless_dos.rate_pps ? fmt_int(*stateless_dos.rate_pps) : "none"});
  fig3.add_row({"EFW stateful",
                stateful_dos.rate_pps ? fmt_int(*stateful_dos.rate_pps) : "none"});
  std::printf("%s\n", fig3.to_string().c_str());
  if (stateless_dos.rate_pps) {
    artifact.add_point("EFW stateless min DoS (pps)", 64, *stateless_dos.rate_pps);
  }
  if (stateful_dos.rate_pps) {
    artifact.add_point("EFW stateful min DoS (pps)", 64, *stateful_dos.rate_pps);
  }
  bench::write_artifact(artifact);

  std::printf(
      "Statefulness flattens the Figure 2 curve (established flows skip the\n"
      "walk) but the Figure 3 threshold barely moves: every flood packet is a\n"
      "first-packet and still buys a full rule walk at minimum-frame prices.\n"
      "Flood tolerance needs admission control (see extension_flood_guard),\n"
      "not just faster classification of good traffic.\n\n");
  return 0;
}
