// Extension: a flood-tolerant embedded firewall (the paper's future work).
//
// The conclusion hopes "this research encourages the development of new
// embedded firewall devices that have sufficient tolerance to simple packet
// flood attacks." This bench evaluates one such design — FloodGuard, a
// cheap pre-rule-walk screen with per-source and aggregate rate limits
// (src/firewall/flood_guard.h) — against the very attacks that kill the
// stock EFW, including the spoofed variant that defeats per-source
// tracking.
#include "bench_common.h"

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Extension: FloodGuard — a Flood-Tolerant EFW",
                      "Ihde & Sanders, DSN 2006, section 5 (future work)");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("extension_flood_guard");
  bench::set_common_meta(artifact, opt);

  firewall::FloodGuardConfig guard;  // defaults documented in flood_guard.h

  TextTable table({"Flood (64-rule policy, 45 kpps, min frames)", "Stock EFW (Mbps)",
                   "EFW + FloodGuard (Mbps)"});
  for (bool spoof : {false, true}) {
    FloodSpec flood;
    flood.rate_pps = 45000;
    flood.spoof_source = spoof;

    TestbedConfig stock;
    stock.firewall = FirewallKind::kEfw;
    stock.action_rule_depth = 64;
    const double without = measure_bandwidth_under_flood(stock, flood, opt).mean();

    TestbedConfig guarded = stock;
    guarded.flood_guard = guard;
    const double with = measure_bandwidth_under_flood(guarded, flood, opt).mean();

    // x: 0 = single-source flood, 1 = spoofed sources.
    artifact.add_point("Stock EFW (Mbps)", spoof ? 1 : 0, without);
    artifact.add_point("EFW + FloodGuard (Mbps)", spoof ? 1 : 0, with);
    table.add_row({spoof ? "spoofed sources" : "single source", fmt(without),
                   fmt(with)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Sim-time view of the guard at work: the guard.* series (screened frames,
  // aggregate drops, tracked sources) next to goodput under the spoofed
  // 45 kpps flood that kills the stock card.
  {
    TestbedConfig guarded;
    guarded.firewall = FirewallKind::kEfw;
    guarded.action_rule_depth = 64;
    guarded.flood_guard = guard;
    FloodSpec flood;
    flood.rate_pps = 45000;
    flood.spoof_source = true;
    const auto timeline = record_flood_timeline(guarded, flood, opt);
    artifact.add_recording("flood_guard spoofed_45kpps", timeline.recording);
    std::printf("timeline: goodput with FloodGuard under spoofed 45 kpps flood = "
                "%s Mbps\n\n",
                fmt(timeline.mbps).c_str());
  }

  // The guard must not tax legitimate performance: repeat Figure 2's 64-rule
  // point with the guard on.
  TestbedConfig clean;
  clean.firewall = FirewallKind::kEfw;
  clean.action_rule_depth = 64;
  const double base = measure_available_bandwidth(clean, opt).mean();
  clean.flood_guard = guard;
  const double guarded_clean = measure_available_bandwidth(clean, opt).mean();
  std::printf("No-attack bandwidth at 64 rules: %.1f Mbps stock, %.1f Mbps with "
              "FloodGuard\n\n",
              base, guarded_clean);
  artifact.set_meta("clean_mbps_stock", base);
  artifact.set_meta("clean_mbps_guarded", guarded_clean);
  bench::write_artifact(artifact);

  std::printf(
      "Reading: per-source limiting neutralizes a single-source flood outright;\n"
      "under spoofing the aggregate admission cap still keeps the rule walk\n"
      "below saturation, preserving most bandwidth where the stock card dies.\n"
      "The screen's own cost is invisible in the no-attack case.\n\n");
  return 0;
}
