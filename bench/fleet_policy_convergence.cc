// Fleet-scale headline bench: policy-distribution convergence time versus
// fleet size, clean and under a flood aimed at the policy server.
//
// One PolicyServer fans an updated policy out to N PolicyAgents (one per
// EFW-guarded host on a leaf-spine fabric) over the authenticated TCP
// protocol. The bench measures how long until 50% / 95% / 100% of the fleet
// has ACKed the new version — first on a quiet fabric, then while a plain-
// NIC attacker saturates the server's access link with spoofed UDP (the
// barbarians aiming at the management plane instead of the data plane).
//
// Not a paper figure: no byte-identity gate, but all series are simulated
// time and deterministic per seed.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/flood_generator.h"
#include "bench_common.h"
#include "core/topology.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"
#include "util/assert.h"

namespace {

using namespace barb;

std::string agent_policy() {
  std::string policy = "default deny\n";
  for (int i = 1; i < 32; ++i) {
    policy += "deny tcp from 192.168." + std::to_string(i / 200) + "." +
              std::to_string(i % 200 + 1) + " to 192.168.250.1\n";
  }
  policy += "deny udp from any to any port 7777\n";
  policy += "allow any from any to any\n";
  return policy;
}

struct ConvergenceResult {
  int agents = 0;
  int connected = 0;
  double t50_ms = -1.0;   // -1: threshold never reached before the deadline
  double t95_ms = -1.0;
  double t100_ms = -1.0;
  std::uint64_t pushes = 0;
  std::uint64_t push_bytes = 0;
  std::uint64_t heartbeats = 0;
};

constexpr int kServerHost = 0;
constexpr int kAttackerHost = 1;

ConvergenceResult run_convergence(int agents, std::uint64_t seed, bool flood) {
  sim::Simulation sim(seed);
  const int hosts = agents + 2;  // server + attacker + fleet

  core::LeafSpineSpec spec;
  spec.hosts = hosts;
  spec.hosts_per_leaf = 16;
  spec.spines = 2;
  spec.nic_for = [](int index) {
    core::NicSpec nic;
    nic.kind = index <= kAttackerHost ? core::FirewallKind::kNone
                                      : core::FirewallKind::kEfw;
    return nic;
  };
  auto fabric = core::build_leaf_spine(sim, spec);

  const std::vector<std::uint8_t> key(32, 0x5c);
  firewall::PolicyServer server(fabric->host(kServerHost), key);
  server.start();

  std::vector<net::Ipv4Address> agent_ips;
  std::vector<std::unique_ptr<firewall::PolicyAgent>> fleet;
  for (int i = 2; i < hosts; ++i) {
    agent_ips.push_back(fabric->host(i).ip());
    fleet.push_back(std::make_unique<firewall::PolicyAgent>(
        fabric->host(i), *fabric->firewall(i), fabric->host(kServerHost).ip(),
        key));
    // Staggered enrollment: a thousand simultaneous SYNs is a self-inflicted
    // flood; real fleets jitter their daemon start.
    fleet.back()->start_after(sim::Duration::milliseconds(10) +
                              sim::Duration::microseconds(523) * (i - 2));
  }

  // Version 1 is the enrollment policy, pushed as each agent says hello.
  const std::string policy = agent_policy();
  server.set_policy_all(agent_ips, policy);

  std::unique_ptr<apps::FloodGenerator> flooder;
  if (flood) {
    apps::FloodConfig cfg;
    cfg.target = fabric->host(kServerHost).ip();
    cfg.target_port = 7777;
    cfg.rate_pps = 10000.0;
    cfg.frame_size = 1514;  // > line rate on the 100 Mbps access link
    cfg.spoof_source = true;
    flooder = std::make_unique<apps::FloodGenerator>(fabric->host(kAttackerHost),
                                                     cfg);
    sim.schedule(sim::Duration::seconds(3), [&] { flooder->start(); });
  }

  // The measured event: a fleet-wide re-push at t=4s (version 2 for every
  // agent), with convergence thresholds sampled every millisecond.
  ConvergenceResult out;
  out.agents = agents;
  const auto t_push = sim::Duration::seconds(4);
  sim.schedule(t_push, [&] { server.set_policy_all(agent_ips, policy); });

  sim::EventHandle poll = sim.schedule_every(sim::Duration::milliseconds(1), [&] {
    const auto acked = server.count_acked_at_least(2);
    const double t_ms =
        (sim.now() - (sim::TimePoint::origin() + t_push)).to_milliseconds();
    if (out.t50_ms < 0 && acked * 2 >= static_cast<std::size_t>(agents)) {
      out.t50_ms = t_ms;
    }
    if (out.t95_ms < 0 && acked * 100 >= static_cast<std::size_t>(agents) * 95) {
      out.t95_ms = t_ms;
    }
    if (out.t100_ms < 0 && acked >= static_cast<std::size_t>(agents)) {
      out.t100_ms = t_ms;
      sim.stop();
    }
  });

  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(24));
  poll.cancel();

  out.connected = static_cast<int>(server.count_connected());
  out.pushes = server.stats().pushes;
  out.push_bytes = server.stats().push_bytes;
  out.heartbeats = server.stats().heartbeats;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace barb;
  using core::TextTable;
  using core::fmt;
  using core::fmt_int;

  bench::print_header("Fleet policy-distribution convergence",
                      "ROADMAP item 2 (fleet-scale extension; not a paper figure)");
  const auto opt = bench::bench_options();

  std::vector<int> sizes = bench::fast_mode() ? std::vector<int>{64, 1024}
                                              : std::vector<int>{64, 256, 1024};

  auto runner = bench::make_runner(argc, argv, opt);
  std::vector<
      std::function<std::pair<ConvergenceResult, ConvergenceResult>(const core::SweepPoint&)>>
      tasks;
  for (const int n : sizes) {
    tasks.push_back([n](const core::SweepPoint& point) {
      ConvergenceResult clean = run_convergence(n, point.seed, /*flood=*/false);
      ConvergenceResult flooded = run_convergence(n, point.seed, /*flood=*/true);
      return std::make_pair(clean, flooded);
    });
  }
  const auto results =
      bench::run_sweep(runner, "fleet_policy_convergence", std::move(tasks));

  telemetry::BenchArtifact artifact("fleet_policy_convergence");
  bench::set_common_meta(artifact, opt);

  TextTable table({"Agents", "Connected", "t50 (ms)", "t95 (ms)", "t100 (ms)",
                   "t100 flood (ms)", "Push KiB"});
  bool ok = true;
  for (const auto& [clean, flooded] : results) {
    const double x = static_cast<double>(clean.agents);
    table.add_row({fmt_int(x), fmt_int(clean.connected), fmt(clean.t50_ms),
                   fmt(clean.t95_ms), fmt(clean.t100_ms), fmt(flooded.t100_ms),
                   fmt(static_cast<double>(flooded.push_bytes) / 1024.0)});

    artifact.add_point("t50_ms", x, clean.t50_ms);
    artifact.add_point("t95_ms", x, clean.t95_ms);
    artifact.add_point("t100_ms", x, clean.t100_ms);
    artifact.add_point("t50_flood_ms", x, flooded.t50_ms);
    artifact.add_point("t95_flood_ms", x, flooded.t95_ms);
    artifact.add_point("t100_flood_ms", x, flooded.t100_ms);
    artifact.add_point("agents_connected", x, static_cast<double>(clean.connected));
    artifact.add_point("push_bytes", x, static_cast<double>(flooded.push_bytes));
    artifact.add_point("heartbeats", x, static_cast<double>(flooded.heartbeats));

    if (clean.connected != clean.agents || clean.t100_ms < 0) ok = false;
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::maybe_write_csv("fleet_policy_convergence", table);
  bench::write_artifact(artifact);

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: fleet did not fully enroll/converge on the quiet "
                 "fabric\n");
    return 1;
  }
  std::printf("PASS: full enrollment and clean convergence at every size\n");
  return 0;
}
