// Figure 2: available bandwidth as rules are added to the rule-set.
//
// Paper series: EFW, ADF, ADF (VPG), iptables over rule depths
// 1,2,4,8,16,32,48,64 (VPG depth counts VPGs: 1..4). Paper findings the
// shape must reproduce: no significant loss below ~20 rules; at 64 rules
// EFW ~50 Mbps (45% loss) and ADF ~33 Mbps (65% loss); iptables flat;
// VPG drops to ~55 Mbps at one VPG but additional non-matching VPGs are
// almost free.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Figure 2: Available Bandwidth vs. Rule-Set Depth",
                      "Ihde & Sanders, DSN 2006, Figure 2");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("fig2_bandwidth");
  bench::set_common_meta(artifact, opt);

  // One flat grid: 8 depths x 4 firewall kinds, then the 4 VPG counts.
  // Enqueue order fixes each point's slot and derived seed.
  const int depths[] = {1, 2, 4, 8, 16, 32, 48, 64};
  const FirewallKind kinds[] = {FirewallKind::kNone, FirewallKind::kIptables,
                                FirewallKind::kEfw, FirewallKind::kAdf};
  std::vector<std::function<BandwidthPoint(const SweepPoint&)>> tasks;
  for (int depth : depths) {
    for (auto kind : kinds) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = kind;
        cfg.action_rule_depth = depth;
        return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed));
      });
    }
  }
  for (int vpgs : {1, 2, 3, 4}) {
    tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kAdfVpg;
      cfg.action_rule_depth = vpgs;
      return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed));
    });
  }
  const auto results = bench::run_sweep(runner, "fig2 grid", std::move(tasks));

  TextTable table({"Rules Traversed", "No Firewall (Mbps)", "iptables (Mbps)",
                   "EFW (Mbps)", "ADF (Mbps)"});
  const char* series_names[] = {"No Firewall", "iptables", "EFW", "ADF"};
  std::size_t slot = 0;
  for (int depth : depths) {
    std::vector<std::string> row{std::to_string(depth)};
    std::size_t series = 0;
    for ([[maybe_unused]] auto kind : kinds) {
      const auto& point = results[slot++];
      artifact.add_point(series_names[series++], depth, point.mean(),
                         point.mbps.count() > 1 ? std::optional(point.stddev())
                                                : std::nullopt);
      row.push_back(fmt(point.mean()) +
                    (point.mbps.count() > 1 ? " +/-" + fmt(point.stddev()) : ""));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("fig2_rules", table);

  TextTable vpg_table({"VPGs (1 matching + N-1 non-matching)", "ADF VPG (Mbps)"});
  for (int vpgs : {1, 2, 3, 4}) {
    const auto& point = results[slot++];
    artifact.add_point("ADF (VPG)", vpgs, point.mean());
    vpg_table.add_row({std::to_string(vpgs), fmt(point.mean())});
  }
  std::printf("%s\n", vpg_table.to_string().c_str());
  barb::bench::maybe_write_csv("fig2_vpgs", vpg_table);
  bench::write_artifact(artifact);

  std::printf("Paper anchors: EFW@64 ~50 Mbps, ADF@64 ~33 Mbps, iptables flat,\n"
              "no significant loss below ~20 rules, extra VPGs ~free.\n\n");
  std::printf("CSV:\n%s\n%s", table.to_csv().c_str(), vpg_table.to_csv().c_str());
  return 0;
}
