// Figure 2 rerun under the counterfactual matching backends: available
// bandwidth vs rule-set depth for the ADF with its calibrated linear
// matcher, the compiled classifier, and the compiled classifier fronted by
// a five-tuple flow cache.
//
// The question this answers is the paper's own "what would it take" aside:
// Figure 2's bandwidth collapse is entirely the O(rules) walk on the
// embedded CPU. Compiling the rule-set at policy-push time makes the
// per-frame cost O(log rules), and the flow cache makes it O(1) for
// established flows — so both counterfactual curves should hold near the
// shallow-rule-set plateau all the way to 64 rules.
//
// The linear series here is the same model as bench/fig2_bandwidth (that
// binary's artifact stays the byte-identical paper reproduction; this one
// is the comparison study).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header(
      "Figure 2 (counterfactual): Bandwidth vs. Depth by Matching Backend",
      "Ihde & Sanders, DSN 2006, Figure 2 — compiled-matcher counterfactual");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("fig2_compiled");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("device", "ADF");

  struct Series {
    const char* name;
    firewall::MatchBackend backend;
  };
  const Series series[] = {
      {"ADF linear", firewall::MatchBackend::kLinear},
      {"ADF compiled", firewall::MatchBackend::kCompiled},
      {"ADF compiled+flowcache", firewall::MatchBackend::kCompiledFlowCache},
  };
  const int depths[] = {1, 2, 4, 8, 16, 32, 48, 64};

  std::vector<std::function<BandwidthPoint(const SweepPoint&)>> tasks;
  for (int depth : depths) {
    for (const auto& s : series) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kAdf;
        cfg.action_rule_depth = depth;
        cfg.match_backend = s.backend;
        return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed));
      });
    }
  }
  const auto results = bench::run_sweep(runner, "fig2_compiled grid", std::move(tasks));

  TextTable table({"Rules Traversed", "ADF linear (Mbps)", "ADF compiled (Mbps)",
                   "ADF compiled+flowcache (Mbps)"});
  std::size_t slot = 0;
  for (int depth : depths) {
    std::vector<std::string> row{std::to_string(depth)};
    for (const auto& s : series) {
      const auto& point = results[slot++];
      artifact.add_point(s.name, depth, point.mean(),
                         point.mbps.count() > 1 ? std::optional(point.stddev())
                                                : std::nullopt);
      row.push_back(fmt(point.mean()));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("fig2_compiled", table);
  bench::write_artifact(artifact);

  std::printf(
      "Expectation: the linear curve collapses toward ~33 Mbps at 64 rules\n"
      "(the paper's ADF measurement); the compiled curve stays near the\n"
      "1-rule plateau because lookup cost grows with log(rules); the\n"
      "flow-cache curve matches or beats compiled (bulk-transfer frames\n"
      "after the first hit at O(1)).\n\n");
  std::printf("CSV:\n%s", table.to_csv().c_str());
  return 0;
}
