// Table 1: HTTP performance of an Apache-class web server protected by an
// ADF (http_load: fetches/s, ms/connect, ms/first-response).
//
// The numeric cells of Table 1 did not survive in our source text; the
// stated relationships to reproduce are: the ADF is below the standard NIC
// in every configuration, the worst case (64 rules) costs ~41% of the fetch
// rate, latency grows but stays modest, adding one VPG costs a significant
// drop while additional non-matching VPGs change nothing.
#include "bench_common.h"

#include "apps/http.h"
#include "core/testbed.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Table 1: HTTP Performance Behind the ADF",
                      "Ihde & Sanders, DSN 2006, Table 1");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("table1_http");
  bench::set_common_meta(artifact, opt);

  TextTable table({"Experiment", "HTTP Fetches/s", "ms/connect", "ms/first-response"});

  // The table rows are text-labeled, so artifact points are added explicitly:
  // one series per metric and configuration family, x = rule/VPG depth (the
  // standard-NIC baseline sits at x = 0 of the rule-depth series).
  auto add_http_point = [&](const char* family, int x, const HttpPoint& p) {
    artifact.add_point(std::string(family) + " fetches/s", x, p.fetches_per_sec);
    artifact.add_point(std::string(family) + " ms/connect", x, p.mean_connect_ms);
    artifact.add_point(std::string(family) + " ms/first-response", x,
                       p.mean_response_ms);
  };

  // Grid: slot 0 = standard-NIC baseline, then the ADF rule depths, then
  // the VPG counts.
  const int rule_depths[] = {1, 4, 16, 32, 64};
  const int vpg_counts[] = {1, 2, 4};
  std::vector<std::function<HttpPoint(const SweepPoint&)>> tasks;
  tasks.push_back([=](const SweepPoint& p) {
    TestbedConfig baseline;
    return measure_http_performance(baseline, bench::with_seed(opt, p.seed));
  });
  for (int depth : rule_depths) {
    tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kAdf;
      cfg.action_rule_depth = depth;
      return measure_http_performance(cfg, bench::with_seed(opt, p.seed));
    });
  }
  for (int vpgs : vpg_counts) {
    tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kAdfVpg;
      cfg.action_rule_depth = vpgs;
      return measure_http_performance(cfg, bench::with_seed(opt, p.seed));
    });
  }
  const auto results = bench::run_sweep(runner, "table1 grid", std::move(tasks));

  std::size_t slot = 0;
  const auto base = results[slot++];
  table.add_row({"Standard NIC", fmt(base.fetches_per_sec), fmt(base.mean_connect_ms, 2),
                 fmt(base.mean_response_ms, 2)});
  add_http_point("ADF rules", 0, base);

  double worst_fetches = base.fetches_per_sec;
  for (int depth : rule_depths) {
    const auto& p = results[slot++];
    table.add_row({"ADF, " + std::to_string(depth) + " rules", fmt(p.fetches_per_sec),
                   fmt(p.mean_connect_ms, 2), fmt(p.mean_response_ms, 2)});
    add_http_point("ADF rules", depth, p);
    worst_fetches = std::min(worst_fetches, p.fetches_per_sec);
  }
  for (int vpgs : vpg_counts) {
    const auto& p = results[slot++];
    table.add_row({"ADF, " + std::to_string(vpgs) + " VPG(s)", fmt(p.fetches_per_sec),
                   fmt(p.mean_connect_ms, 2), fmt(p.mean_response_ms, 2)});
    add_http_point("ADF VPGs", vpgs, p);
  }

  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("table1", table);
  artifact.set_meta("worst_fetch_decrease_pct",
                    (1.0 - worst_fetches / base.fetches_per_sec) * 100.0);
  bench::write_artifact(artifact);
  std::printf("Worst-case ADF fetch-rate decrease vs. standard NIC: %.0f%%"
              " (paper: ~41%%)\n\n",
              (1.0 - worst_fetches / base.fetches_per_sec) * 100.0);
  std::printf("CSV:\n%s", table.to_csv().c_str());

  // Appendix: the paper's alternative http_load methodology ("the number of
  // parallel connections supported by the server at a given connection
  // rate") — a fixed 100 connections/s against the same configurations.
  TextTable parallel({"Experiment", "mean parallel conns @100/s", "completed %"});
  struct ParallelCase {
    const char* label;
    FirewallKind kind;
    int depth;
  };
  const ParallelCase cases[] = {
      {"Standard NIC", FirewallKind::kNone, 1},
      {"ADF, 64 rules", FirewallKind::kAdf, 64},
      {"ADF, 1 VPG", FirewallKind::kAdfVpg, 1},
  };
  std::vector<std::function<apps::HttpParallelResult(const SweepPoint&)>>
      parallel_tasks;
  for (const auto& c : cases) {
    parallel_tasks.push_back([=](const SweepPoint& p) {
      sim::Simulation sim(p.seed);
      TestbedConfig cfg;
      cfg.firewall = c.kind;
      cfg.action_rule_depth = c.depth;
      Testbed tb(sim, cfg);
      apps::HttpServer server(tb.target(), 80);
      server.start();
      apps::HttpParallelLoadClient client(tb.client(), tb.addresses().target);
      apps::HttpParallelResult result;
      client.run(100, opt.http_duration,
                 [&](apps::HttpParallelResult r) { result = r; });
      sim.run_for(opt.http_duration + sim::Duration::seconds(2));
      return result;
    });
  }
  const auto parallel_results =
      bench::run_sweep(runner, "table1 parallel appendix", std::move(parallel_tasks));
  for (std::size_t i = 0; i < parallel_results.size(); ++i) {
    parallel.add_row({cases[i].label, fmt(parallel_results[i].mean_parallel, 2),
                      fmt(parallel_results[i].completion_fraction * 100, 1)});
  }
  std::printf("\n%s\n", parallel.to_string().c_str());
  std::printf("Slower per-fetch paths need more concurrent connections to hold\n"
              "the same request rate (Little's law) — the firewall tax again,\n"
              "seen through the paper's alternative lens.\n");
  return 0;
}
