// Table 1: HTTP performance of an Apache-class web server protected by an
// ADF (http_load: fetches/s, ms/connect, ms/first-response).
//
// The numeric cells of Table 1 did not survive in our source text; the
// stated relationships to reproduce are: the ADF is below the standard NIC
// in every configuration, the worst case (64 rules) costs ~41% of the fetch
// rate, latency grows but stays modest, adding one VPG costs a significant
// drop while additional non-matching VPGs change nothing.
#include "bench_common.h"

#include "apps/http.h"
#include "core/testbed.h"

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Table 1: HTTP Performance Behind the ADF",
                      "Ihde & Sanders, DSN 2006, Table 1");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("table1_http");
  bench::set_common_meta(artifact, opt);

  TextTable table({"Experiment", "HTTP Fetches/s", "ms/connect", "ms/first-response"});

  // The table rows are text-labeled, so artifact points are added explicitly:
  // one series per metric and configuration family, x = rule/VPG depth (the
  // standard-NIC baseline sits at x = 0 of the rule-depth series).
  auto add_http_point = [&](const char* family, int x, const HttpPoint& p) {
    artifact.add_point(std::string(family) + " fetches/s", x, p.fetches_per_sec);
    artifact.add_point(std::string(family) + " ms/connect", x, p.mean_connect_ms);
    artifact.add_point(std::string(family) + " ms/first-response", x,
                       p.mean_response_ms);
  };

  TestbedConfig baseline;
  const auto base = measure_http_performance(baseline, opt);
  table.add_row({"Standard NIC", fmt(base.fetches_per_sec), fmt(base.mean_connect_ms, 2),
                 fmt(base.mean_response_ms, 2)});
  add_http_point("ADF rules", 0, base);

  double worst_fetches = base.fetches_per_sec;
  for (int depth : {1, 4, 16, 32, 64}) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kAdf;
    cfg.action_rule_depth = depth;
    const auto p = measure_http_performance(cfg, opt);
    table.add_row({"ADF, " + std::to_string(depth) + " rules", fmt(p.fetches_per_sec),
                   fmt(p.mean_connect_ms, 2), fmt(p.mean_response_ms, 2)});
    add_http_point("ADF rules", depth, p);
    worst_fetches = std::min(worst_fetches, p.fetches_per_sec);
    std::fflush(stdout);
  }
  for (int vpgs : {1, 2, 4}) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kAdfVpg;
    cfg.action_rule_depth = vpgs;
    const auto p = measure_http_performance(cfg, opt);
    table.add_row({"ADF, " + std::to_string(vpgs) + " VPG(s)", fmt(p.fetches_per_sec),
                   fmt(p.mean_connect_ms, 2), fmt(p.mean_response_ms, 2)});
    add_http_point("ADF VPGs", vpgs, p);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("table1", table);
  artifact.set_meta("worst_fetch_decrease_pct",
                    (1.0 - worst_fetches / base.fetches_per_sec) * 100.0);
  bench::write_artifact(artifact);
  std::printf("Worst-case ADF fetch-rate decrease vs. standard NIC: %.0f%%"
              " (paper: ~41%%)\n\n",
              (1.0 - worst_fetches / base.fetches_per_sec) * 100.0);
  std::printf("CSV:\n%s", table.to_csv().c_str());

  // Appendix: the paper's alternative http_load methodology ("the number of
  // parallel connections supported by the server at a given connection
  // rate") — a fixed 100 connections/s against the same configurations.
  TextTable parallel({"Experiment", "mean parallel conns @100/s", "completed %"});
  auto parallel_row = [&](const char* label, FirewallKind kind, int depth) {
    sim::Simulation sim(opt.seed);
    TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = depth;
    Testbed tb(sim, cfg);
    apps::HttpServer server(tb.target(), 80);
    server.start();
    apps::HttpParallelLoadClient client(tb.client(), tb.addresses().target);
    apps::HttpParallelResult result;
    client.run(100, opt.http_duration, [&](apps::HttpParallelResult r) { result = r; });
    sim.run_for(opt.http_duration + sim::Duration::seconds(2));
    parallel.add_row({label, fmt(result.mean_parallel, 2),
                      fmt(result.completion_fraction * 100, 1)});
  };
  parallel_row("Standard NIC", FirewallKind::kNone, 1);
  parallel_row("ADF, 64 rules", FirewallKind::kAdf, 64);
  parallel_row("ADF, 1 VPG", FirewallKind::kAdfVpg, 1);
  std::printf("\n%s\n", parallel.to_string().c_str());
  std::printf("Slower per-fetch paths need more concurrent connections to hold\n"
              "the same request rate (Little's law) — the firewall tax again,\n"
              "seen through the paper's alternative lens.\n");
  return 0;
}
