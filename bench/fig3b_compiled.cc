// Figure 3(b) rerun under the counterfactual matching backends, plus the
// flow-cache thrash scenario: minimum flood rate to cause denial of service
// vs rule depth, ADF allow-case.
//
// Five series:
//   ADF linear                 — the paper-faithful baseline (same model as
//                                bench/fig3b_min_flood_rate's ADF (Allow));
//   ADF compiled               — rule depth mostly stops mattering, so the
//                                minimum flood rate stays near its depth-1
//                                value instead of collapsing;
//   ADF compiled+flowcache     — single-source flood: after the first frame
//                                the flood tuple is cached and every flood
//                                frame resolves at O(1), raising the bar
//                                over plain compiled;
//   ADF compiled (spoofed) / ADF compiled+flowcache (spoofed) — the
//                                counter-counterfactual pair. Spoofed-vs-
//                                honest is not comparable directly: RSTs to
//                                spoofed (nonexistent) sources die at ARP
//                                and never pay the card's egress cost, so
//                                spoofed floods need HIGHER rates overall —
//                                the same response-traffic mechanism behind
//                                the paper's "deny ~ 2x allow" anchor. The
//                                cache-thrash effect is read WITHIN the
//                                spoofed pair: every spoofed frame is a
//                                fresh five-tuple, so it misses, pays hash
//                                + tree walk + insert, and evicts a live
//                                entry — the flow cache turns from asset
//                                into pure overhead, and the flowcache
//                                curve drops below plain compiled. Caches
//                                are not flood armor.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header(
      "Figure 3(b) (counterfactual): Min DoS Flood Rate by Matching Backend",
      "Ihde & Sanders, DSN 2006, Figure 3(b) — compiled-matcher counterfactual");
  const auto opt = bench::bench_options();
  const auto search = bench::bench_search_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("fig3b_compiled");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("device", "ADF");
  artifact.set_meta("flood", "tcp_data");
  artifact.set_meta("search_precision", search.precision);

  struct Series {
    const char* name;
    firewall::MatchBackend backend;
    bool spoof;
  };
  const Series series[] = {
      {"ADF linear", firewall::MatchBackend::kLinear, false},
      {"ADF compiled", firewall::MatchBackend::kCompiled, false},
      {"ADF compiled+flowcache", firewall::MatchBackend::kCompiledFlowCache, false},
      {"ADF compiled (spoofed)", firewall::MatchBackend::kCompiled, true},
      {"ADF compiled+flowcache (spoofed)", firewall::MatchBackend::kCompiledFlowCache,
       true},
  };
  const int depths[] = {1, 8, 16, 32, 64};

  std::vector<std::function<MinFloodResult(const SweepPoint&)>> tasks;
  for (const auto& s : series) {
    for (int depth : depths) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kAdf;
        cfg.action_rule_depth = depth;
        cfg.flood_action = firewall::RuleAction::kAllow;
        cfg.match_backend = s.backend;
        FloodSpec flood;
        flood.type = apps::FloodType::kTcpData;
        flood.spoof_source = s.spoof;
        return find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed),
                                       search);
      });
    }
  }
  const auto results = bench::run_sweep(runner, "fig3b_compiled grid", std::move(tasks));

  TextTable table({"Series", "d=1", "d=8", "d=16", "d=32", "d=64"});
  std::size_t slot = 0;
  for (const auto& s : series) {
    std::vector<std::string> row{s.name};
    for (int depth : depths) {
      const auto& result = results[slot++];
      if (result.rate_pps) artifact.add_point(s.name, depth, *result.rate_pps);
      row.push_back(result.rate_pps ? fmt_int(*result.rate_pps) : "none");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("fig3b_compiled", table);

  // Cache-thrash timelines: the same 30 kpps flood against the flowcache
  // backend at depth 64, single-source vs spoofed. The recordings carry the
  // match.* telemetry (flow hits/misses/evictions/live entries), so the
  // thrash mechanism is visible directly: the spoofed run's hit counter
  // stays flat while misses and evictions climb with every flood frame.
  {
    std::vector<std::function<FloodTimeline(const SweepPoint&)>> timeline_tasks;
    for (const bool spoof : {false, true}) {
      timeline_tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = FirewallKind::kAdf;
        cfg.action_rule_depth = 64;
        cfg.flood_action = firewall::RuleAction::kAllow;
        cfg.match_backend = firewall::MatchBackend::kCompiledFlowCache;
        FloodSpec flood;
        flood.type = apps::FloodType::kTcpData;
        flood.rate_pps = 30000;
        flood.spoof_source = spoof;
        return record_flood_timeline(cfg, flood, bench::with_seed(opt, p.seed));
      });
    }
    const auto timelines =
        bench::run_sweep(runner, "fig3b_compiled thrash timelines",
                         std::move(timeline_tasks));
    const char* scenarios[] = {"flowcache single_source_30kpps",
                               "flowcache spoofed_30kpps"};
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      artifact.add_recording(scenarios[i], timelines[i].recording);
      std::printf("timeline: goodput under %s = %s Mbps\n", scenarios[i],
                  fmt(timelines[i].mbps).c_str());
    }
    std::printf("\n");
  }
  bench::write_artifact(artifact);

  std::printf(
      "Expectation: the linear series falls with depth (the paper's curve);\n"
      "compiled stays near its depth-1 rate; single-source flowcache beats\n"
      "compiled (the cached flood tuple resolves at O(1)). The spoofed pair\n"
      "sits higher overall — RSTs to spoofed sources die at ARP and spare\n"
      "the card their egress cost — but WITHIN the pair the flow cache now\n"
      "LOWERS the bar: every spoofed frame is a fresh tuple, misses, pays\n"
      "hash + walk + insert, and churns the table (cache thrash). 'none'\n"
      "means no rate up to 160 kpps caused DoS.\n\n");
  std::printf("CSV:\n%s", table.to_csv().c_str());
  return 0;
}
