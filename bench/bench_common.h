// Shared configuration for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation
// and prints it as an aligned table plus CSV. Set BARB_BENCH_FAST=1 for a
// quick pass (shorter windows, fewer repetitions, coarser searches).
//
// Every grid-driving binary accepts `--jobs N` (or $BARB_JOBS) and executes
// its independent points through core::SweepRunner. Artifacts, tables, and
// stdout are byte-identical for every N at the same seed: per-point seeds
// derive from (base seed, point index) and results are collected
// slot-per-point, so only wall-clock changes. Progress/timing notes go to
// stderr to keep stdout deterministic.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.h"
#include "core/report.h"
#include "core/runner.h"
#include "telemetry/artifact.h"
#include "util/logging.h"

namespace barb::bench {

inline bool fast_mode() {
  const char* env = std::getenv("BARB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

// Output directory for bench artifacts (JSON, and CSV unless
// BARB_BENCH_CSV_DIR overrides it). Defaults to the current directory.
inline std::string out_dir() {
  const char* env = std::getenv("BARB_BENCH_OUT");
  return (env == nullptr || env[0] == '\0') ? "." : env;
}

inline core::MeasurementOptions bench_options() {
  // Suppress expected lockup warnings in the experiment output.
  Logger::instance().set_level(LogLevel::kError);
  core::MeasurementOptions opt;
  if (fast_mode()) {
    opt.window = sim::Duration::milliseconds(500);
    opt.repetitions = 1;
    opt.http_duration = sim::Duration::seconds(2);
  } else {
    opt.window = sim::Duration::seconds(2);
    opt.repetitions = 3;  // the paper averages three measurements per point
    opt.http_duration = sim::Duration::seconds(10);
  }
  return opt;
}

inline core::MinFloodSearchOptions bench_search_options() {
  core::MinFloodSearchOptions search;
  search.precision = fast_mode() ? 1.25 : 1.08;
  return search;
}

// Sweep runner honouring --jobs N / $BARB_JOBS (default 1 = exact serial
// path), seeded from the measurement options' base seed. When the parallel
// DES engine is on (BARB_DES_SHARDS > 1) each point runs K shard threads, so
// the sweep pool shrinks to keep --jobs the total thread budget; artifacts
// are byte-identical across every (jobs, shards) combination.
inline core::SweepRunner make_runner(int argc, char** argv,
                                     const core::MeasurementOptions& opt) {
  core::SweepRunner::Options ro;
  ro.jobs = core::jobs_from_cli(argc, argv);
  ro.base_seed = opt.seed;
  const int shards = core::des_shards_from_env();
  ro.threads_per_point = shards > 1 ? shards : 1;
  return core::SweepRunner(ro);
}

// Copy of `opt` re-seeded for one sweep point.
inline core::MeasurementOptions with_seed(core::MeasurementOptions opt,
                                          std::uint64_t seed) {
  opt.seed = seed;
  return opt;
}

// Runs one task grid through the runner and notes wall-clock on stderr
// (stderr, not stdout: the figure output must not depend on --jobs).
template <typename R>
std::vector<R> run_sweep(core::SweepRunner& runner, const char* label,
                         std::vector<std::function<R(const core::SweepPoint&)>> tasks) {
  const auto t0 = std::chrono::steady_clock::now();
  auto results = runner.run(std::move(tasks));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::fprintf(stderr, "(%s: %zu points, jobs=%d, %.2f s wall)\n", label,
               results.size(), runner.jobs(), secs);
  return results;
}

// Writes a table's CSV to <dir>/<name>.csv, where <dir> is
// $BARB_BENCH_CSV_DIR if set, else $BARB_BENCH_OUT, else ".".
inline void maybe_write_csv(const char* name, const core::TextTable& table) {
  const char* csv_dir = std::getenv("BARB_BENCH_CSV_DIR");
  const std::string dir =
      (csv_dir != nullptr && csv_dir[0] != '\0') ? csv_dir : out_dir();
  const std::string path = dir + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = table.to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  std::printf("(csv written to %s)\n", path.c_str());
}

// Stamps the standard metadata every artifact carries.
inline void set_common_meta(telemetry::BenchArtifact& artifact,
                            const core::MeasurementOptions& opt) {
  artifact.set_meta("mode", fast_mode() ? "fast" : "full");
  artifact.set_meta("window_s", opt.window.to_seconds());
  artifact.set_meta("repetitions", static_cast<double>(opt.repetitions));
  artifact.set_meta("seed", static_cast<double>(opt.seed));
}

// Converts a rendered table into summary points: column 0 is x, every other
// column becomes one series named by its header. Cells that do not start
// with a number (e.g. "no DoS", "yes") are skipped.
inline void add_table_points(telemetry::BenchArtifact& artifact,
                             const core::TextTable& table) {
  const auto& headers = table.headers();
  for (const auto& row : table.rows()) {
    if (row.empty()) continue;
    char* end = nullptr;
    const double x = std::strtod(row[0].c_str(), &end);
    if (end == row[0].c_str()) continue;
    for (std::size_t c = 1; c < row.size() && c < headers.size(); ++c) {
      end = nullptr;
      const double y = std::strtod(row[c].c_str(), &end);
      if (end == row[c].c_str()) continue;
      artifact.add_point(headers[c], x, y);
    }
  }
}

// Writes BENCH_<figure>.json into $BARB_BENCH_OUT (default ".").
inline void write_artifact(const telemetry::BenchArtifact& artifact) {
  const std::string path = artifact.write_to(out_dir());
  if (path.empty()) {
    std::fprintf(stderr, "cannot write %s to %s\n", artifact.filename().c_str(),
                 out_dir().c_str());
    return;
  }
  std::printf("(bench artifact written to %s)\n", path.c_str());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("%s\n", fast_mode() ? "(fast mode: reduced windows/repetitions)"
                                  : "(full mode; BARB_BENCH_FAST=1 for a quick pass)");
  std::printf("==============================================================\n\n");
}

}  // namespace barb::bench
