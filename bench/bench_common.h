// Shared configuration for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation
// and prints it as an aligned table plus CSV. Set BARB_BENCH_FAST=1 for a
// quick pass (shorter windows, fewer repetitions, coarser searches).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiments.h"
#include "core/report.h"
#include "util/logging.h"

namespace barb::bench {

inline bool fast_mode() {
  const char* env = std::getenv("BARB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline core::MeasurementOptions bench_options() {
  // Suppress expected lockup warnings in the experiment output.
  Logger::instance().set_level(LogLevel::kError);
  core::MeasurementOptions opt;
  if (fast_mode()) {
    opt.window = sim::Duration::milliseconds(500);
    opt.repetitions = 1;
    opt.http_duration = sim::Duration::seconds(2);
  } else {
    opt.window = sim::Duration::seconds(2);
    opt.repetitions = 3;  // the paper averages three measurements per point
    opt.http_duration = sim::Duration::seconds(10);
  }
  return opt;
}

inline core::MinFloodSearchOptions bench_search_options() {
  core::MinFloodSearchOptions search;
  search.precision = fast_mode() ? 1.25 : 1.08;
  return search;
}

// Writes a table's CSV to $BARB_BENCH_CSV_DIR/<name>.csv when the variable
// is set (for plotting pipelines); no-op otherwise.
inline void maybe_write_csv(const char* name, const core::TextTable& table) {
  const char* dir = std::getenv("BARB_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = table.to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  std::printf("(csv written to %s)\n", path.c_str());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("%s\n", fast_mode() ? "(fast mode: reduced windows/repetitions)"
                                  : "(full mode; BARB_BENCH_FAST=1 for a quick pass)");
  std::printf("==============================================================\n\n");
}

}  // namespace barb::bench
