// Figure 3(b): minimum flood rate required to cause denial of service, as
// the action rule moves deeper into the rule-set.
//
// Paper series: EFW (Allow), ADF (Allow), ADF (Deny) at depths 1, 8, 16,
// 32, 64; the EFW (Deny) series is missing in the paper because the card
// locked up above ~1000 pps. Shape to reproduce: rates fall with depth to
// ~4.5 kpps for the 64-rule allow case; denying the flood roughly doubles
// the required rate (no TCP RST responses); the EFW deny case latches.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Figure 3(b): Minimum DoS Flood Rate vs. Rule Depth",
                      "Ihde & Sanders, DSN 2006, Figure 3(b)");
  const auto opt = bench::bench_options();
  const auto search = bench::bench_search_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("fig3b_min_flood_rate");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("flood", "tcp_data");
  artifact.set_meta("search_precision", search.precision);

  struct Series {
    const char* name;
    FirewallKind kind;
    firewall::RuleAction action;
  };
  const Series series[] = {
      {"EFW (Allow)", FirewallKind::kEfw, firewall::RuleAction::kAllow},
      {"ADF (Allow)", FirewallKind::kAdf, firewall::RuleAction::kAllow},
      {"ADF (Deny)", FirewallKind::kAdf, firewall::RuleAction::kDeny},
      {"EFW (Deny)", FirewallKind::kEfw, firewall::RuleAction::kDeny},
  };
  const int depths[] = {1, 8, 16, 32, 64};

  // Each (series, depth) cell is one task: a full ladder + bisection search,
  // the most expensive point grid in the suite — and every probe within a
  // cell stays sequential (the bisection is inherently so), so cells are the
  // parallelism grain.
  std::vector<std::function<MinFloodResult(const SweepPoint&)>> tasks;
  for (const auto& s : series) {
    for (int depth : depths) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = s.kind;
        cfg.action_rule_depth = depth;
        cfg.flood_action = s.action;
        FloodSpec flood;
        // TCP data flood: when allowed, every packet draws a RST response.
        flood.type = apps::FloodType::kTcpData;
        return find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed),
                                       search);
      });
    }
  }
  const auto results = bench::run_sweep(runner, "fig3b grid", std::move(tasks));

  TextTable table({"Series", "d=1", "d=8", "d=16", "d=32", "d=64"});
  std::size_t slot = 0;
  for (const auto& s : series) {
    std::vector<std::string> row{s.name};
    for (int depth : depths) {
      const auto& result = results[slot++];
      // The table is transposed (series down, depth across), so the artifact
      // points are added per cell: x = rule depth, y = min DoS rate.
      if (result.rate_pps) artifact.add_point(s.name, depth, *result.rate_pps);
      if (result.lockup_observed) {
        artifact.add_point(std::string(s.name) + " lockup", depth, 1.0);
      }
      std::string cell = result.rate_pps ? fmt_int(*result.rate_pps) : "none";
      if (result.lockup_observed) cell += " [LOCKUP]";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("fig3b", table);
  bench::write_artifact(artifact);
  std::printf(
      "Paper anchors: allow-case minimum falls to ~4.5 kpps at 64 rules; at 8\n"
      "rules an attacker on a 10 Mbps link (max ~14.9 kpps) can already DoS;\n"
      "deny ~2x allow; the EFW deny series could not be captured because the\n"
      "card stopped processing above ~1000 pps ([LOCKUP] reproduces this —\n"
      "only an agent restart at the console recovers the card).\n\n");
  std::printf("CSV:\n%s", table.to_csv().c_str());
  return 0;
}
