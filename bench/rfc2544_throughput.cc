// Appendix: RFC 2544-style maximum lossless throughput of the firewall
// cards, and the paper's indirect Max.Throughput = BW / FrameSize estimate.
//
// The paper explains why it could not run RFC 2544 directly (a host-resident
// firewall has no second interface to forward out of) and instead derived
// maximum throughput from single-interface bandwidth measurements. With a
// simulator we can do both: a binary search for the highest UDP frame rate
// the card sustains with zero loss (RFC 2544's definition, using the NIC's
// own delivery counters), next to the paper's derivation.
#include "bench_common.h"

#include "apps/flood_generator.h"
#include "core/testbed.h"

namespace {

using namespace barb;
using namespace barb::core;

// Highest rate (pps) of `frame_size` UDP frames the target's firewall
// delivers with zero loss over a one-second trial. Every probe in the binary
// search runs a fresh simulation from `seed`, so the search is a pure
// function of its arguments and safe to run on a sweep-runner worker.
double max_lossless_rate(FirewallKind kind, int depth, std::size_t frame_size,
                         std::uint64_t seed) {
  auto lossless_at = [&](double rate) {
    sim::Simulation sim(seed);
    TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = depth;
    Testbed tb(sim, cfg);
    // Sink the flood on an open UDP port so it is legitimate traffic.
    auto* sink = tb.target().udp_open(kFloodPort);
    (void)sink;

    apps::FloodConfig fc;
    fc.target = tb.addresses().target;
    fc.target_port = kFloodPort;
    fc.rate_pps = rate;
    fc.frame_size = frame_size;
    apps::FloodGenerator gen(tb.attacker(), fc);
    gen.start();
    sim.run_for(sim::Duration::seconds(1));
    gen.stop();
    sim.run_for(sim::Duration::milliseconds(200));  // drain queues

    const auto& nic = tb.target().nic().stats();
    return nic.rx_delivered >= gen.packets_sent();
  };

  // RFC 2544 binary search between 0 and the line rate for this size.
  const double line_rate =
      100e6 / ((std::max<std::size_t>(frame_size, 60) + 24) * 8.0);
  double lo = 0, hi = line_rate;
  if (lossless_at(line_rate)) return line_rate;
  for (int i = 0; i < 12; ++i) {
    const double mid = (lo + hi) / 2;
    (lossless_at(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Appendix: RFC 2544-style Maximum Lossless Throughput",
                      "Ihde & Sanders, DSN 2006, section 4.1 methodology notes");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("rfc2544_throughput");
  bench::set_common_meta(artifact, opt);

  // Grid: (kind x frame size) lossless-rate searches, each a full binary
  // search and thus the parallelism grain.
  const FirewallKind kinds[] = {FirewallKind::kEfw, FirewallKind::kAdf};
  const std::size_t frame_sizes[] = {60, 1514};
  std::vector<std::function<double(const SweepPoint&)>> direct_tasks;
  for (auto kind : kinds) {
    for (std::size_t frame_size : frame_sizes) {
      direct_tasks.push_back([=](const SweepPoint& p) {
        return max_lossless_rate(kind, 64, frame_size, p.seed);
      });
    }
  }
  const auto direct_rates =
      bench::run_sweep(runner, "rfc2544 direct grid", std::move(direct_tasks));

  TextTable direct({"Device (64 rules)", "64 B frames (pps)", "1514 B frames (pps)",
                    "1514 B frames (Mbps)"});
  std::size_t slot = 0;
  for (auto kind : kinds) {
    const double small = direct_rates[slot++];
    const double big = direct_rates[slot++];
    // One series per device, x = frame size in bytes on the wire.
    artifact.add_point(std::string(to_string(kind)) + " lossless rate (pps)", 60,
                       small);
    artifact.add_point(std::string(to_string(kind)) + " lossless rate (pps)", 1514,
                       big);
    direct.add_row({to_string(kind), fmt_int(small), fmt_int(big),
                    fmt(big * 1514 * 8 / 1e6)});
  }
  std::printf("%s\n", direct.to_string().c_str());

  // The paper's indirect estimate from the Figure-2 bandwidth measurement.
  std::vector<std::function<double(const SweepPoint&)>> indirect_tasks;
  for (auto kind : kinds) {
    indirect_tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = kind;
      cfg.action_rule_depth = 64;
      return measure_available_bandwidth(cfg, bench::with_seed(opt, p.seed)).mean();
    });
  }
  const auto indirect_bw =
      bench::run_sweep(runner, "rfc2544 indirect grid", std::move(indirect_tasks));

  TextTable indirect({"Device (64 rules)", "iperf BW (Mbps)",
                      "BW/FrameSize estimate (pps)"});
  slot = 0;
  for (auto kind : kinds) {
    const double mbps = indirect_bw[slot++];
    artifact.add_point(std::string(to_string(kind)) + " indirect estimate (pps)",
                       1514, mbps * 1e6 / 8 / 1514);
    indirect.add_row({to_string(kind), fmt(mbps), fmt_int(mbps * 1e6 / 8 / 1514)});
  }
  std::printf("%s\n", indirect.to_string().c_str());
  bench::write_artifact(artifact);
  std::printf(
      "The paper reports ~4100 pkt/s for the EFW/ADF behind 64 rules via the\n"
      "indirect method. Note the asymmetry the paper warns about: the lossless\n"
      "rate for minimum-size frames is far below the line's 148810 fps, so \"no\n"
      "bandwidth loss with large frames\" never implies flood tolerance.\n\n");
  return 0;
}
