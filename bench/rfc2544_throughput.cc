// Appendix: RFC 2544-style maximum lossless throughput of the firewall
// cards, and the paper's indirect Max.Throughput = BW / FrameSize estimate.
//
// The paper explains why it could not run RFC 2544 directly (a host-resident
// firewall has no second interface to forward out of) and instead derived
// maximum throughput from single-interface bandwidth measurements. With a
// simulator we can do both: a binary search for the highest UDP frame rate
// the card sustains with zero loss (RFC 2544's definition, using the NIC's
// own delivery counters), next to the paper's derivation.
#include "bench_common.h"

#include "apps/flood_generator.h"
#include "core/testbed.h"

namespace {

using namespace barb;
using namespace barb::core;

// Highest rate (pps) of `frame_size` UDP frames the target's firewall
// delivers with zero loss over a one-second trial.
double max_lossless_rate(FirewallKind kind, int depth, std::size_t frame_size) {
  auto lossless_at = [&](double rate) {
    sim::Simulation sim(1);
    TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = depth;
    Testbed tb(sim, cfg);
    // Sink the flood on an open UDP port so it is legitimate traffic.
    auto* sink = tb.target().udp_open(kFloodPort);
    (void)sink;

    apps::FloodConfig fc;
    fc.target = tb.addresses().target;
    fc.target_port = kFloodPort;
    fc.rate_pps = rate;
    fc.frame_size = frame_size;
    apps::FloodGenerator gen(tb.attacker(), fc);
    gen.start();
    sim.run_for(sim::Duration::seconds(1));
    gen.stop();
    sim.run_for(sim::Duration::milliseconds(200));  // drain queues

    const auto& nic = tb.target().nic().stats();
    return nic.rx_delivered >= gen.packets_sent();
  };

  // RFC 2544 binary search between 0 and the line rate for this size.
  const double line_rate =
      100e6 / ((std::max<std::size_t>(frame_size, 60) + 24) * 8.0);
  double lo = 0, hi = line_rate;
  if (lossless_at(line_rate)) return line_rate;
  for (int i = 0; i < 12; ++i) {
    const double mid = (lo + hi) / 2;
    (lossless_at(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main() {
  bench::print_header("Appendix: RFC 2544-style Maximum Lossless Throughput",
                      "Ihde & Sanders, DSN 2006, section 4.1 methodology notes");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("rfc2544_throughput");
  bench::set_common_meta(artifact, opt);

  TextTable direct({"Device (64 rules)", "64 B frames (pps)", "1514 B frames (pps)",
                    "1514 B frames (Mbps)"});
  for (auto kind : {FirewallKind::kEfw, FirewallKind::kAdf}) {
    const double small = max_lossless_rate(kind, 64, 60);
    const double big = max_lossless_rate(kind, 64, 1514);
    // One series per device, x = frame size in bytes on the wire.
    artifact.add_point(std::string(to_string(kind)) + " lossless rate (pps)", 60,
                       small);
    artifact.add_point(std::string(to_string(kind)) + " lossless rate (pps)", 1514,
                       big);
    direct.add_row({to_string(kind), fmt_int(small), fmt_int(big),
                    fmt(big * 1514 * 8 / 1e6)});
    std::fflush(stdout);
  }
  std::printf("%s\n", direct.to_string().c_str());

  // The paper's indirect estimate from the Figure-2 bandwidth measurement.
  TextTable indirect({"Device (64 rules)", "iperf BW (Mbps)",
                      "BW/FrameSize estimate (pps)"});
  for (auto kind : {FirewallKind::kEfw, FirewallKind::kAdf}) {
    TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = 64;
    const double mbps = measure_available_bandwidth(cfg, opt).mean();
    artifact.add_point(std::string(to_string(kind)) + " indirect estimate (pps)",
                       1514, mbps * 1e6 / 8 / 1514);
    indirect.add_row({to_string(kind), fmt(mbps), fmt_int(mbps * 1e6 / 8 / 1514)});
  }
  std::printf("%s\n", indirect.to_string().c_str());
  bench::write_artifact(artifact);
  std::printf(
      "The paper reports ~4100 pkt/s for the EFW/ADF behind 64 rules via the\n"
      "indirect method. Note the asymmetry the paper warns about: the lossless\n"
      "rate for minimum-size frames is far below the line's 148810 fps, so \"no\n"
      "bandwidth loss with large frames\" never implies flood tolerance.\n\n");
  return 0;
}
