// Policy shape as a workload dimension: realistic vs synthetic rule-sets.
//
// Everything the paper-reproduction figures measure uses synthetic depth-N
// rule lists in which every lookup traverses the full list (the worst case
// for the linear walk, and the shape fig2's rule-depth sweep is built on).
// Real enterprise policies — Wool's surveys, modeled by the policygen
// corpus generator — look different: skewed-small rule counts, mixed field
// specificity, bidirectional conversation rules, VPG tunnels. This bench
// quantifies how much backend cost actually depends on that shape.
//
// Part 1 (host-CPU matcher timing, no cost model): linear walk vs compiled
// classifier on four shapes at matched rule counts — the synthetic
// worst-case list, a Wool-realistic corpus, a tunnel-dominated heavy-VPG
// corpus, and the adversarial-overlap stress shape — with traffic drawn
// from each corpus's own address universe. Also reports the mean rules
// traversed by first-match (realistic traffic short-circuits: the linear
// walk's effective depth is far below N) and the analyzer's full pairwise
// audit time at each size.
//
// Part 2 (simulated time): PolicyServer distribution of a realistic
// 5000-rule corpus (~full policy DSL text) to the PR-7 fleet, next to the
// 34-rule synthetic policy the fleet bench ships — the management-plane
// cost of realistic policy *size*, measured as t50/t95/t100 convergence and
// pushed bytes. Fast mode shrinks the fleet to 128 agents and the corpus to
// 1200 rules.
//
// Gates (exit nonzero): the three backends must agree on every sampled
// tuple for every shape, and the fleet must fully enroll and converge on
// the realistic policy.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/topology.h"
#include "firewall/classifier/compiled_classifier.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"
#include "firewall/policygen/policy_corpus.h"
#include "firewall/policygen/rule_analyzer.h"
#include "firewall/rule_set.h"
#include "sim/random.h"

namespace {

using namespace barb;
namespace pg = firewall::policygen;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

volatile std::uint64_t g_sink = 0;

template <typename F>
double ns_per_op(int iterations, F&& op) {
  std::uint64_t acc = 0;
  for (int i = 0; i < iterations / 10 + 1; ++i) acc += op(i);
  const double t0 = now_seconds();
  for (int i = 0; i < iterations; ++i) acc += op(i);
  const double secs = now_seconds() - t0;
  g_sink = g_sink + acc;
  return secs * 1e9 / iterations;
}

// The synthetic worst case the paper figures use: N-1 never-matching UDP
// rules ahead of the one rule the traffic hits.
firewall::RuleSet synthetic_rules(int depth) {
  firewall::RuleSet rs;
  for (int i = 0; i < depth - 1; ++i) {
    firewall::Rule r;
    r.action = firewall::RuleAction::kDeny;
    r.protocol = 17;
    r.dst_ports = firewall::PortRange{static_cast<std::uint16_t>(10000 + i),
                                      static_cast<std::uint16_t>(10000 + i)};
    r.bidirectional = false;
    rs.add(r);
  }
  firewall::Rule last;
  last.action = firewall::RuleAction::kAllow;
  last.protocol = 6;
  last.dst_ports = firewall::PortRange{80, 80};
  rs.add(last);
  return rs;
}

std::vector<net::FiveTuple> synthetic_flows(int count, sim::Random& rng) {
  std::vector<net::FiveTuple> flows;
  for (int i = 0; i < count; ++i) {
    net::FiveTuple t;
    t.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(8)),
                             static_cast<std::uint8_t>(1 + rng.uniform(250)));
    t.dst = net::Ipv4Address(10, 0, 0, 40);
    t.src_port = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
    t.dst_port = 80;
    t.protocol = 6;
    flows.push_back(t);
  }
  return flows;
}

struct ShapeCase {
  const char* name;
  bool synthetic;
  pg::CorpusShape shape;  // ignored when synthetic
};

struct ShapeRow {
  double lin_ns = 0;
  double cmp_ns = 0;
  double avg_traversed = 0;
  int compiled_nodes = 0;
  double analyzer_ms = 0;
  bool agree = true;
};

ShapeRow run_shape(const ShapeCase& sc, int size, bool fast,
                   std::uint64_t seed) {
  firewall::RuleSet rs;
  pg::PolicyCorpusGenerator gen(seed);
  sim::Random rng(seed ^ 0xbe9c);
  std::vector<net::FiveTuple> flows;
  constexpr int kFlows = 256;
  if (sc.synthetic) {
    rs = synthetic_rules(size);
    flows = synthetic_flows(kFlows, rng);
  } else {
    pg::CorpusSpec spec;
    spec.shape = sc.shape;
    spec.rules = size;
    rs = gen.generate(spec).rules;
    for (int i = 0; i < kFlows; ++i) flows.push_back(gen.random_universe_tuple());
  }

  ShapeRow row;
  firewall::CompiledClassifier compiled;
  compiled.rebuild(rs);
  row.compiled_nodes = compiled.match(flows[0]).nodes;

  // Agreement gate + effective linear depth over the workload.
  std::uint64_t traversed = 0;
  for (const auto& t : flows) {
    const auto lin = rs.match(t);
    const auto cm = compiled.match(t);
    traversed += lin.rules_traversed;
    if (lin.action != cm.result.action ||
        lin.matched_index != cm.result.matched_index ||
        lin.rules_traversed != cm.result.rules_traversed) {
      row.agree = false;
      std::fprintf(stderr, "FAIL: backend disagreement (%s, %d rules) on %s\n",
                   sc.name, size, t.to_string().c_str());
      return row;
    }
  }
  row.avg_traversed = static_cast<double>(traversed) / kFlows;

  const int lin_iters = std::max(2000, (fast ? 300'000 : 3'000'000) / size);
  const int cmp_iters = fast ? 40'000 : 300'000;
  row.lin_ns = ns_per_op(lin_iters, [&](int i) {
    return static_cast<std::uint64_t>(
        rs.match(flows[static_cast<std::size_t>(i) % kFlows]).rules_traversed);
  });
  row.cmp_ns = ns_per_op(cmp_iters, [&](int i) {
    return static_cast<std::uint64_t>(
        compiled.match(flows[static_cast<std::size_t>(i) % kFlows]).nodes);
  });

  const double t0 = now_seconds();
  const auto report = pg::RuleSetAnalyzer::analyze(rs);
  row.analyzer_ms = (now_seconds() - t0) * 1e3;
  g_sink = g_sink + report.pairs_examined;
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: realistic-size policy distribution to the fleet
// ---------------------------------------------------------------------------

std::string small_synthetic_policy() {
  std::string policy = "default deny\n";
  for (int i = 1; i < 32; ++i) {
    policy += "deny tcp from 192.168." + std::to_string(i / 200) + "." +
              std::to_string(i % 200 + 1) + " to 192.168.250.1\n";
  }
  policy += "allow any from any to any\n";
  return policy;
}

struct ConvergenceRow {
  int agents = 0;
  int connected = 0;
  std::size_t policy_rules = 0;
  std::size_t policy_bytes = 0;
  double t50_ms = -1.0;
  double t95_ms = -1.0;
  double t100_ms = -1.0;
  std::uint64_t push_bytes = 0;
  std::size_t installed_rules = 0;  // spot-checked on one agent after t100
};

ConvergenceRow run_distribution(int agents, const std::string& policy,
                                std::size_t policy_rules, std::uint64_t seed) {
  sim::Simulation sim(seed);
  const int hosts = agents + 1;  // server + fleet (no attacker here)

  core::LeafSpineSpec spec;
  spec.hosts = hosts;
  spec.hosts_per_leaf = 16;
  spec.spines = 2;
  spec.nic_for = [](int index) {
    core::NicSpec nic;
    nic.kind = index == 0 ? core::FirewallKind::kNone : core::FirewallKind::kEfw;
    return nic;
  };
  auto fabric = core::build_leaf_spine(sim, spec);

  const std::vector<std::uint8_t> key(32, 0x5c);
  firewall::PolicyServer server(fabric->host(0), key);
  server.start();

  // Management-plane allow, first-match position. Without it a default-deny
  // corpus cuts the agent off from the server the moment it is installed
  // (the NIC filters egress too, so even the ACK never leaves the host) —
  // the classic self-lockout real deployments guard against with exactly
  // this rule.
  const std::string mgmt_rule =
      "allow tcp from any to " + fabric->host(0).ip().to_string() + " port " +
      std::to_string(firewall::PolicyServer::kDefaultPort) + "\n";
  std::string text = policy;
  if (text.starts_with("default")) {
    const auto first_nl = text.find('\n');
    text.insert(first_nl == std::string::npos ? text.size() : first_nl + 1,
                mgmt_rule);
  } else {
    text.insert(0, mgmt_rule);
  }

  std::vector<net::Ipv4Address> agent_ips;
  std::vector<std::unique_ptr<firewall::PolicyAgent>> fleet;
  for (int i = 1; i < hosts; ++i) {
    agent_ips.push_back(fabric->host(i).ip());
    fleet.push_back(std::make_unique<firewall::PolicyAgent>(
        fabric->host(i), *fabric->firewall(i), fabric->host(0).ip(), key));
    fleet.back()->start_after(sim::Duration::milliseconds(10) +
                              sim::Duration::microseconds(523) * (i - 1));
  }
  // Enrollment version (1): a trivial permissive policy so the measured
  // event below isolates the *update* cost of the big rule-set.
  server.set_policy_all(agent_ips, "default deny\nallow any from any to any\n");

  ConvergenceRow out;
  out.agents = agents;
  out.policy_rules = policy_rules;
  out.policy_bytes = text.size();

  const auto t_push = sim::Duration::seconds(4);
  sim.schedule(t_push, [&] { server.set_policy_all(agent_ips, text); });
  sim::EventHandle poll = sim.schedule_every(sim::Duration::milliseconds(1), [&] {
    const auto acked = server.count_acked_at_least(2);
    const double t_ms =
        (sim.now() - (sim::TimePoint::origin() + t_push)).to_milliseconds();
    if (out.t50_ms < 0 && acked * 2 >= static_cast<std::size_t>(agents)) {
      out.t50_ms = t_ms;
    }
    if (out.t95_ms < 0 && acked * 100 >= static_cast<std::size_t>(agents) * 95) {
      out.t95_ms = t_ms;
    }
    if (out.t100_ms < 0 && acked >= static_cast<std::size_t>(agents)) {
      out.t100_ms = t_ms;
      sim.stop();
    }
  });

  // Generous deadline: a ~full-size DSL text to a 1k fleet moves hundreds of
  // megabytes through the server's access link.
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(300));
  poll.cancel();

  out.connected = static_cast<int>(server.count_connected());
  out.push_bytes = server.stats().push_bytes;
  out.installed_rules = fabric->firewall(hosts - 1) != nullptr
                            ? fabric->firewall(hosts - 1)->rule_set().size()
                            : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using core::TextTable;
  using core::fmt;
  using core::fmt_int;
  (void)argc;
  (void)argv;

  bench::print_header(
      "Policy shape sensitivity: realistic corpora vs synthetic rule lists",
      "ROADMAP item 5 (policy realism; extends fig2's rule-depth model)");
  const bool fast = bench::fast_mode();

  telemetry::BenchArtifact artifact("policy_shape");
  artifact.set_meta("mode", fast ? "fast" : "full");

  const ShapeCase shapes[] = {
      {"synthetic", true, pg::CorpusShape::kRealistic},
      {"realistic", false, pg::CorpusShape::kRealistic},
      {"heavy-vpg", false, pg::CorpusShape::kHeavyVpg},
      {"adversarial", false, pg::CorpusShape::kAdversarialOverlap},
  };
  const std::vector<int> sizes =
      fast ? std::vector<int>{64, 512} : std::vector<int>{64, 512, 2500};

  TextTable table({"Rules", "Shape", "linear (ns/op)", "compiled (ns/op)",
                   "avg traversed", "compiled nodes", "analyzer (ms)"});
  bool ok = true;
  for (const int size : sizes) {
    for (const ShapeCase& sc : shapes) {
      const ShapeRow row = run_shape(sc, size, fast, 0xba5e + size);
      ok = ok && row.agree;
      table.add_row({std::to_string(size), sc.name, fmt(row.lin_ns),
                     fmt(row.cmp_ns), fmt(row.avg_traversed),
                     std::to_string(row.compiled_nodes), fmt(row.analyzer_ms)});
      const double x = size;
      const std::string suffix = std::string("_") + sc.name;
      artifact.add_point("ns_per_match_linear" + suffix, x, row.lin_ns);
      artifact.add_point("ns_per_match_compiled" + suffix, x, row.cmp_ns);
      artifact.add_point("avg_rules_traversed" + suffix, x, row.avg_traversed);
      artifact.add_point("compiled_nodes" + suffix, x,
                         static_cast<double>(row.compiled_nodes));
      artifact.add_point("analyzer_ms" + suffix, x, row.analyzer_ms);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "note: 'avg traversed' is the mean first-match depth over universe\n"
      "traffic — realistic corpora short-circuit far above the synthetic\n"
      "worst case, so fig2's linear-walk cost is an upper bound there.\n\n");

  // Part 2: fleet distribution of a realistic full-size policy.
  const int agents = fast ? 128 : 1024;
  const int corpus_rules = fast ? 1200 : 5000;
  pg::PolicyCorpusGenerator gen(0xf1ee7);
  pg::CorpusSpec spec;
  spec.rules = corpus_rules;
  const pg::GeneratedCorpus corpus = gen.generate(spec);
  const std::string big_policy = corpus.rules.to_string();
  const std::string small_policy = small_synthetic_policy();

  TextTable fleet({"Agents", "Policy rules", "Policy KiB", "t50 (ms)",
                   "t95 (ms)", "t100 (ms)", "Push KiB", "Installed rules"});
  const ConvergenceRow rows[] = {
      run_distribution(agents, small_policy, 33, 42),
      run_distribution(agents, big_policy, corpus.rules.size(), 42),
  };
  for (const ConvergenceRow& r : rows) {
    fleet.add_row({fmt_int(r.agents), fmt_int(static_cast<double>(r.policy_rules)),
                   fmt(static_cast<double>(r.policy_bytes) / 1024.0), fmt(r.t50_ms),
                   fmt(r.t95_ms), fmt(r.t100_ms),
                   fmt(static_cast<double>(r.push_bytes) / 1024.0),
                   fmt_int(static_cast<double>(r.installed_rules))});
    const double x = static_cast<double>(r.policy_rules);
    artifact.add_point("fleet_t50_ms", x, r.t50_ms);
    artifact.add_point("fleet_t95_ms", x, r.t95_ms);
    artifact.add_point("fleet_t100_ms", x, r.t100_ms);
    artifact.add_point("fleet_push_bytes", x, static_cast<double>(r.push_bytes));
    artifact.add_point("fleet_agents_connected", x,
                       static_cast<double>(r.connected));
    if (r.connected != r.agents || r.t100_ms < 0) {
      std::fprintf(stderr,
                   "FAIL: fleet did not enroll/converge (%zu-rule policy, "
                   "%d/%d connected, t100=%.1f)\n",
                   r.policy_rules, r.connected, r.agents, r.t100_ms);
      ok = false;
    }
  }
  // The big policy must arrive intact: the spot-checked agent holds every
  // corpus rule plus the prepended management-plane allow.
  if (rows[1].installed_rules != corpus.rules.size() + 1) {
    std::fprintf(stderr, "FAIL: agent installed %zu rules, corpus has %zu\n",
                 rows[1].installed_rules, corpus.rules.size());
    ok = false;
  }
  std::printf("%s\n", fleet.to_string().c_str());

  bench::maybe_write_csv("policy_shape", table);
  bench::write_artifact(artifact);
  if (!ok) return 1;
  std::printf(
      "PASS: backends agree on every shape; fleet converged on the "
      "realistic policy\n");
  return 0;
}
