// Ablation: how much does "deny attack sources early" actually buy?
//
// The paper recommends placing denies for likely attack sources early in the
// rule-set, then immediately warns that "early denial is only partially
// effective in preventing flood attacks, given the attacker's ability to
// spoof packets that will traverse deeper into the rule-set." This ablation
// quantifies both halves: an EFW-style deny-the-attacker rule at depth 1
// with the allow rule at depth 64, attacked first honestly and then with
// randomized spoofed sources.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: Early Denial vs. Source Spoofing",
                      "Ihde & Sanders, DSN 2006, sections 4.3 and 5");
  const auto opt = bench::bench_options();
  const auto search = bench::bench_search_options();
  auto runner = bench::make_runner(argc, argv, opt);

  std::vector<std::function<double(const SweepPoint&)>> tasks;
  for (bool spoof : {false, true}) {
    tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kAdf;  // no lockup fault; isolates the effect
      cfg.action_rule_depth = 64;
      cfg.deny_attacker_first = true;
      FloodSpec flood;
      flood.type = apps::FloodType::kTcpData;
      flood.spoof_source = spoof;
      const auto r =
          find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed), search);
      return r.rate_pps.value_or(0.0);
    });
  }
  const auto rates = bench::run_sweep(runner, "spoofing grid", std::move(tasks));
  const double honest = rates[0];
  const double spoofed = rates[1];

  telemetry::BenchArtifact artifact("ablation_spoofing");
  bench::set_common_meta(artifact, opt);
  artifact.add_point("real source (early deny)", 64, honest);
  artifact.add_point("spoofed sources (deep allow)", 64, spoofed);
  artifact.set_meta("early_denial_gain", honest / spoofed);
  bench::write_artifact(artifact);

  TextTable table({"Attacker (ADF, deny-attacker rule at depth 1, allow at 64)",
                   "Min DoS rate (pps)"});
  table.add_row({"real source address (hits the early deny)", fmt_int(honest)});
  table.add_row({"spoofed sources (traverse to the depth-64 allow)",
                 fmt_int(spoofed)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Early denial raises the attack cost by %.1fx against an honest\n"
              "source, but spoofing claws back a factor of %.1fx: spoofed flood\n"
              "packets are matched by the deep allow rule AND elicit RST\n"
              "responses, the worst case of Figure 3(b). Early denies help only\n"
              "against attackers who cannot spoof.\n\n",
              honest / spoofed, honest / spoofed);
  return 0;
}
