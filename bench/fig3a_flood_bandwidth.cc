// Figure 3(a): available bandwidth during a packet flood, single-rule
// policy.
//
// Paper series: No Firewall, iptables, EFW, ADF, ADF (VPG) across nine
// flood rates. Shape to reproduce: the plain NIC and iptables degrade only
// by wire contention; the EFW/ADF lose a major portion of bandwidth well
// before ~45 kpps and collapse to ~0 around 30% of the maximum frame rate;
// the ADF VPG curve declines near-linearly with flood rate.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Figure 3(a): Available Bandwidth During Packet Flood",
                      "Ihde & Sanders, DSN 2006, Figure 3(a)");
  const auto opt = bench::bench_options();
  auto runner = bench::make_runner(argc, argv, opt);

  telemetry::BenchArtifact artifact("fig3a_flood_bandwidth");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("flood", "udp_min_frame");

  const double rates[] = {5000,  10000, 15000, 20000, 25000,
                          30000, 35000, 40000, 45000};
  const FirewallKind kinds[] = {FirewallKind::kNone, FirewallKind::kIptables,
                                FirewallKind::kEfw, FirewallKind::kAdf,
                                FirewallKind::kAdfVpg};
  std::vector<std::function<BandwidthPoint(const SweepPoint&)>> tasks;
  for (double rate : rates) {
    for (auto kind : kinds) {
      tasks.push_back([=](const SweepPoint& p) {
        TestbedConfig cfg;
        cfg.firewall = kind;
        cfg.action_rule_depth = 1;
        FloodSpec flood;  // minimum-size UDP flood, the attacker's optimum
        flood.rate_pps = rate;
        return measure_bandwidth_under_flood(cfg, flood,
                                             bench::with_seed(opt, p.seed));
      });
    }
  }
  const auto results = bench::run_sweep(runner, "fig3a grid", std::move(tasks));

  TextTable table({"Flood Rate (pps)", "No Firewall", "iptables", "EFW", "ADF",
                   "ADF (VPG)"});
  const char* series_names[] = {"No Firewall", "iptables", "EFW", "ADF",
                                "ADF (VPG)"};
  std::size_t slot = 0;
  for (double rate : rates) {
    std::vector<std::string> row{fmt_int(rate)};
    std::size_t series = 0;
    for ([[maybe_unused]] auto kind : kinds) {
      const auto& point = results[slot++];
      artifact.add_point(series_names[series++], rate, point.mean(),
                         point.mbps.count() > 1 ? std::optional(point.stddev())
                                                : std::nullopt);
      row.push_back(fmt(point.mean()));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("fig3a", table);

  // Sim-time view of the 30 kpps column: goodput vs. time plus every
  // firewall/queue/stack metric, sampled on the sim clock.
  const FirewallKind timeline_kinds[] = {FirewallKind::kNone, FirewallKind::kAdf};
  std::vector<std::function<FloodTimeline(const SweepPoint&)>> timeline_tasks;
  for (auto kind : timeline_kinds) {
    timeline_tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = kind;
      cfg.action_rule_depth = 1;
      FloodSpec flood;
      flood.rate_pps = 30000;
      return record_flood_timeline(cfg, flood, bench::with_seed(opt, p.seed));
    });
  }
  const auto timelines =
      bench::run_sweep(runner, "fig3a timelines", std::move(timeline_tasks));
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    artifact.add_recording(std::string(to_string(timeline_kinds[i])) +
                               " flood_30kpps",
                           timelines[i].recording);
    std::printf("timeline %-12s: goodput under 30 kpps flood = %s Mbps\n",
                to_string(timeline_kinds[i]), fmt(timelines[i].mbps).c_str());
  }
  std::printf("\n");
  bench::write_artifact(artifact);
  std::printf(
      "Paper anchors: baselines hold most of the residual bandwidth under\n"
      "flood; EFW/ADF collapse to ~0 near 45 kpps (30%% of the maximum frame\n"
      "rate); ADF (VPG) declines near-linearly from its no-flood ~55 Mbps.\n\n");
  std::printf("CSV:\n%s", table.to_csv().c_str());
  return 0;
}
