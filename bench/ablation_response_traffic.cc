// Ablation: where does the allow-vs-deny factor of two come from?
//
// The paper explains the deny case's extra flood tolerance as "actually due
// to the lack of any outgoing TCP responses": allowed flood packets reach
// the host, which answers each with a RST that consumes the firewall CPU a
// second time. This ablation separates the deny *path* from the response
// *traffic* by comparing three floods at the same rule depth:
//   (a) TCP data flood, allowed  -> one RST per packet (paper's allow case)
//   (b) UDP flood, allowed       -> responses rate-limited to ~1/s by the
//                                   host's ICMP limiter (allowed, silent)
//   (c) TCP data flood, denied   -> no responses (paper's deny case)
// If the explanation is right, (b) ~ (c) ~ 2 x (a): being allowed is not
// what halves tolerance — eliciting responses is.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Ablation: Response Traffic vs. Deny Path",
                      "Ihde & Sanders, DSN 2006, section 4.3 (explanation)");
  const auto opt = bench::bench_options();
  const auto search = bench::bench_search_options();
  auto runner = bench::make_runner(argc, argv, opt);
  const int depth = 32;

  struct Case {
    apps::FloodType type;
    firewall::RuleAction action;
  };
  const Case cases[] = {
      {apps::FloodType::kTcpData, firewall::RuleAction::kAllow},
      {apps::FloodType::kUdp, firewall::RuleAction::kAllow},
      {apps::FloodType::kTcpData, firewall::RuleAction::kDeny},
  };
  std::vector<std::function<double(const SweepPoint&)>> tasks;
  for (const auto& c : cases) {
    tasks.push_back([=](const SweepPoint& p) {
      TestbedConfig cfg;
      cfg.firewall = FirewallKind::kAdf;
      cfg.action_rule_depth = depth;
      cfg.flood_action = c.action;
      FloodSpec flood;
      flood.type = c.type;
      const auto r =
          find_min_dos_flood_rate(cfg, flood, bench::with_seed(opt, p.seed), search);
      return r.rate_pps.value_or(0.0);
    });
  }
  const auto rates = bench::run_sweep(runner, "response-traffic grid", std::move(tasks));
  const double tcp_allowed = rates[0];
  const double udp_allowed = rates[1];
  const double tcp_denied = rates[2];

  telemetry::BenchArtifact artifact("ablation_response_traffic");
  bench::set_common_meta(artifact, opt);
  artifact.add_point("TCP data, allowed", depth, tcp_allowed);
  artifact.add_point("UDP, allowed", depth, udp_allowed);
  artifact.add_point("TCP data, denied", depth, tcp_denied);
  artifact.set_meta("deny_allow_factor", tcp_denied / tcp_allowed);
  artifact.set_meta("silent_allow_allow_factor", udp_allowed / tcp_allowed);

  TextTable table({"Flood (ADF, depth 32)", "Responses per flood packet",
                   "Min DoS rate (pps)"});
  table.add_row({"TCP data, allowed", "1 (RST)", fmt_int(tcp_allowed)});
  table.add_row({"UDP, allowed", "~0 (ICMP rate-limited)", fmt_int(udp_allowed)});
  table.add_row({"TCP data, denied", "0", fmt_int(tcp_denied)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("deny/allow factor:          %.2f (paper: ~2)\n",
              tcp_denied / tcp_allowed);
  std::printf("silent-allow/allow factor:  %.2f (should match deny/allow)\n",
              udp_allowed / tcp_allowed);
  std::printf("deny vs silent-allow:       %.2f (should be ~1: the deny path\n"
              "                            itself adds no tolerance)\n\n",
              tcp_denied / udp_allowed);
  bench::write_artifact(artifact);
  return 0;
}
