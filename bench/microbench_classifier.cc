// Micro-benchmark: matcher-only throughput vs rule-set depth.
//
// Isolates the three rule-matching backends from the simulator entirely and
// times real host-CPU work (no cost model): the linear first-match walk
// (RuleSet::match), the compiled field-wise classifier, and the flow-cache
// hit path in front of it, at rule depths 16, 256, and 4096.
//
// The rule-sets are adversarial for the linear walk — the traffic matches
// only the last rule, so every lookup scans the full list — and every
// backend is checked to return the same verdict before being timed.
//
// Gates (the bench exits nonzero, so the ctest run is a regression gate):
//   compiled >= 5x linear matches/sec at depth 4096
//   flow-cache hit cost is depth-independent: hit ns/op at 4096 <= 4x + 50ns
//   of hit ns/op at 16 (O(1) in rule depth)
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "firewall/classifier/compiled_classifier.h"
#include "firewall/classifier/flow_cache.h"
#include "firewall/rule_set.h"
#include "sim/random.h"

namespace {

using namespace barb;

// Padding rule i: UDP to a unique high port, unidirectional, never matched
// by the TCP workload. Distinct ports keep the compiled interval tables
// honest (4096 real intervals, not one collapsed wildcard).
firewall::Rule padding_rule(int i) {
  firewall::Rule r;
  r.action = firewall::RuleAction::kDeny;
  r.protocol = 17;
  r.dst_ports = firewall::PortRange{static_cast<std::uint16_t>(10000 + i),
                                    static_cast<std::uint16_t>(10000 + i)};
  r.bidirectional = false;
  return r;
}

firewall::RuleSet rules_at_depth(int depth) {
  firewall::RuleSet rs;
  for (int i = 0; i < depth - 1; ++i) rs.add(padding_rule(i));
  firewall::Rule last;
  last.action = firewall::RuleAction::kAllow;
  last.protocol = 6;
  last.dst_ports = firewall::PortRange{80, 80};
  rs.add(last);
  return rs;
}

// A working set of distinct flows, all matching the final rule.
std::vector<net::FiveTuple> make_flows(int count, sim::Random& rng) {
  std::vector<net::FiveTuple> flows;
  flows.reserve(count);
  for (int i = 0; i < count; ++i) {
    net::FiveTuple t;
    t.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(8)),
                             static_cast<std::uint8_t>(1 + rng.uniform(250)));
    t.dst = net::Ipv4Address(10, 0, 0, 40);
    t.src_port = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
    t.dst_port = 80;
    t.protocol = 6;
    flows.push_back(t);
  }
  return flows;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double ns_per_op = 0;
  double ops_per_sec = 0;
};

// The volatile sink keeps the optimizer from deleting the measured loop.
volatile std::uint64_t g_sink = 0;

template <typename F>
Timed time_loop(int iterations, F&& op) {
  // Untimed warm-up pass (caches, branch predictors).
  std::uint64_t acc = 0;
  for (int i = 0; i < iterations / 10 + 1; ++i) acc += op(i);
  const double t0 = now_seconds();
  for (int i = 0; i < iterations; ++i) acc += op(i);
  const double secs = now_seconds() - t0;
  g_sink = g_sink + acc;
  Timed t;
  t.ns_per_op = secs * 1e9 / iterations;
  t.ops_per_sec = iterations / secs;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace barb;
  (void)argc;
  (void)argv;
  bench::print_header(
      "Micro-benchmark: rule-matching backends vs rule-set depth",
      "counterfactual for Ihde & Sanders, DSN 2006, Section 4 (rule-depth cost)");
  const bool fast = bench::fast_mode();

  telemetry::BenchArtifact artifact("microbench_classifier");
  artifact.set_meta("mode", fast ? "fast" : "full");

  const int depths[] = {16, 256, 4096};
  const int kFlows = 64;
  core::TextTable table({"Depth", "linear (ns/op)", "compiled (ns/op)",
                         "flowcache hit (ns/op)", "compiled speedup",
                         "compiled nodes"});

  double speedup_at_4096 = 0;
  double hit_ns_at_16 = 0, hit_ns_at_4096 = 0;
  for (const int depth : depths) {
    const auto rs = rules_at_depth(depth);
    firewall::CompiledClassifier compiled;
    compiled.rebuild(rs);
    sim::Random rng(0xbe9cf10e5ULL + depth);
    const auto flows = make_flows(kFlows, rng);

    // Cross-check before timing: all backends agree on every flow.
    firewall::FlowCache cache(firewall::FlowCacheConfig{1024, 16});
    for (const auto& t : flows) {
      const auto lin = rs.match(t);
      const auto cm = compiled.match(t);
      if (lin.action != cm.result.action ||
          lin.matched_index != cm.result.matched_index ||
          lin.rules_traversed != cm.result.rules_traversed) {
        std::fprintf(stderr, "FAIL: backend disagreement at depth %d\n", depth);
        return 1;
      }
      cache.insert(t, cm.result);
    }

    // Iteration counts sized so the slowest cell (linear @ 4096) stays
    // around a hundred milliseconds.
    const int lin_iters = (fast ? 400'000 : 4'000'000) / depth;
    const int cmp_iters = fast ? 50'000 : 400'000;
    const int hit_iters = fast ? 200'000 : 2'000'000;

    const auto lin = time_loop(lin_iters, [&](int i) {
      return static_cast<std::uint64_t>(
          rs.match(flows[static_cast<std::size_t>(i) % kFlows]).matched_index);
    });
    const auto cmp = time_loop(cmp_iters, [&](int i) {
      return static_cast<std::uint64_t>(
          compiled.match(flows[static_cast<std::size_t>(i) % kFlows]).nodes);
    });
    const auto hit = time_loop(hit_iters, [&](int i) {
      firewall::MatchResult out;
      return static_cast<std::uint64_t>(
          cache.lookup(flows[static_cast<std::size_t>(i) % kFlows], &out));
    });
    const double speedup = lin.ns_per_op / cmp.ns_per_op;
    const int nodes = compiled.match(flows[0]).nodes;

    artifact.add_point("ns_per_match_linear", depth, lin.ns_per_op);
    artifact.add_point("ns_per_match_compiled", depth, cmp.ns_per_op);
    artifact.add_point("ns_per_hit_flowcache", depth, hit.ns_per_op);
    artifact.add_point("speedup_compiled_vs_linear", depth, speedup);
    artifact.add_point("compiled_nodes", depth, nodes);
    artifact.add_point("compiled_memory_bytes", depth,
                       static_cast<double>(compiled.stats().memory_bytes));
    table.add_row({std::to_string(depth), core::fmt(lin.ns_per_op),
                   core::fmt(cmp.ns_per_op), core::fmt(hit.ns_per_op),
                   core::fmt(speedup), std::to_string(nodes)});

    if (depth == 4096) speedup_at_4096 = speedup;
    if (depth == 16) hit_ns_at_16 = hit.ns_per_op;
    if (depth == 4096) hit_ns_at_4096 = hit.ns_per_op;
  }

  std::printf("%s\n", table.to_string().c_str());
  barb::bench::maybe_write_csv("microbench_classifier", table);
  bench::write_artifact(artifact);

  bool ok = true;
  if (speedup_at_4096 < 5.0) {
    std::fprintf(stderr, "FAIL: compiled speedup at depth 4096 is %.1fx (< 5x)\n",
                 speedup_at_4096);
    ok = false;
  }
  // O(1) hit path: depth must not leak into the hit cost. The +50ns slack
  // absorbs timer granularity on the ~10ns measurement.
  if (hit_ns_at_4096 > 4.0 * hit_ns_at_16 + 50.0) {
    std::fprintf(stderr,
                 "FAIL: flow-cache hit cost grew with depth: %.1f ns @16 vs "
                 "%.1f ns @4096\n",
                 hit_ns_at_16, hit_ns_at_4096);
    ok = false;
  }
  std::printf("gates: compiled/linear @4096 = %.1fx (>= 5x required); "
              "flowcache hit %.1f ns @16 vs %.1f ns @4096 (O(1) required)\n",
              speedup_at_4096, hit_ns_at_16, hit_ns_at_4096);
  return ok ? 0 : 1;
}
