// Micro-benchmark: event-engine throughput and steady-state allocations.
//
// Drives a scheduler-shaped workload — hundreds of concurrent self-
// rescheduling event chains with mixed horizons, plus churning far-future
// timers that get cancelled before firing (TCP-retransmit style) — through
// three engines:
//
//   legacy : a faithful in-file replica of the pre-overhaul scheduler
//            (std::function callbacks, one make_shared<bool> cancellation
//            flag per event, binary heap) — the baseline the overhaul is
//            measured against;
//   heap   : the new engine's binary-heap backend (BARB_SCHED=heap), which
//            already uses slab records and InlineCallback;
//   wheel  : the hierarchical timing wheel (default backend).
//
// Callbacks carry a 40-byte capture, matching the simulator's real frame-
// delivery closures (packet handle + endpoint context): big enough that
// std::function heap-allocates it, small enough that InlineCallback stores
// it inline. The binary's global operator new/delete count every heap
// allocation, so the steady-state measurement window can assert *zero*
// allocations per scheduled event on the new engine.
//
// Gates (the bench exits nonzero, so the ctest run is a regression gate):
//   wheel events/sec >= 2x legacy events/sec
//   wheel steady-state allocations per event == 0
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "bench_common.h"
#include "sim/scheduler.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Single-threaded binary; plain counters suffice.

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using barb::sim::Duration;
using barb::sim::TimePoint;

// ---------------------------------------------------------------------------
// The pre-overhaul engine, reproduced verbatim (minus the unused bits) so the
// speedup is measured against what the simulator actually ran, not a straw
// man. See git history of src/sim/scheduler.h.

class LegacyHandle {
 public:
  LegacyHandle() = default;
  explicit LegacyHandle(std::weak_ptr<bool> state) : state_(std::move(state)) {}
  void cancel() {
    if (auto s = state_.lock()) *s = true;
    state_.reset();
  }

 private:
  std::weak_ptr<bool> state_;
};

class LegacyScheduler {
 public:
  using Callback = std::function<void()>;

  LegacyHandle schedule_at(TimePoint at, Callback fn) {
    auto cancelled = std::make_shared<bool>(false);
    LegacyHandle handle{std::weak_ptr<bool>(cancelled)};
    heap_.push_back(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return handle;
  }

  TimePoint now() const { return now_; }

  bool run_one() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Entry e = std::move(heap_.back());
      heap_.pop_back();
      if (*e.cancelled) continue;
      now_ = e.at;
      e.fn();
      return true;
    }
    return false;
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Workload: kChains self-rescheduling chains with per-chain xorshift delays
// spanning every wheel level, plus a far-future cancelled-before-firing
// timer per chain (overflow tombstone churn). Identical event sequence on
// every engine.

constexpr std::uint32_t kChains = 256;

template <class Sched, class Handle>
class Workload {
 public:
  explicit Workload(Sched& sched) : sched_(sched) {
    chains_.resize(kChains);
    timers_.resize(kChains);
    for (std::uint32_t c = 0; c < kChains; ++c) {
      chains_[c].rng = 0x9e3779b97f4a7c15ull ^ (c * 0xbf58476d1ce4e5b9ull);
      spawn(c);
    }
  }

  // Runs until `target` events have executed (across all chains).
  void run_until_count(std::uint64_t target) {
    while (executed_ < target && sched_.run_one()) {
    }
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Chain {
    std::uint64_t rng = 0;
    std::uint64_t fires = 0;
  };

  // Capture payload sized like the simulator's frame-delivery closures:
  // exceeds std::function's small-object buffer, fits InlineCallback's.
  struct Payload {
    Workload* w;
    std::uint32_t chain;
    unsigned char packet_ctx[28];
  };
  static_assert(sizeof(Payload) == 40);

  void spawn(std::uint32_t c) {
    Chain& ch = chains_[c];
    ch.rng ^= ch.rng << 13;
    ch.rng ^= ch.rng >> 7;
    ch.rng ^= ch.rng << 17;
    // Mixed horizons: mostly sub-slot to mid-wheel, occasionally a level-3
    // hop, so dispatch exercises cascades and cursor jumps.
    const std::uint64_t r = ch.rng;
    Duration delay = Duration::nanoseconds(static_cast<std::int64_t>(r % 4096));
    if ((r & 0xf) == 0) {
      delay = Duration::nanoseconds(static_cast<std::int64_t>(1u << 20) +
                                    static_cast<std::int64_t>(r % 1024));
    }
    Payload p{this, c, {}};
    auto h = sched_.schedule_at(sched_.now() + delay, [p] { p.w->fire(p.chain); });
    static_cast<void>(h);
  }

  void fire(std::uint32_t c) {
    ++executed_;
    Chain& ch = chains_[c];
    ++ch.fires;
    // Retransmit-timer churn: replace this chain's pending far-future timer
    // (overflow horizon) with a fresh one; the old one never fires.
    if ((ch.fires & 63) == 0) {
      timers_[c].cancel();
      Payload p{this, c, {}};
      timers_[c] = sched_.schedule_at(
          sched_.now() + Duration::nanoseconds(std::int64_t{1} << 26),
          [p] { ++p.w->timers_fired_; });
    }
    spawn(c);
  }

  Sched& sched_;
  std::vector<Chain> chains_;
  std::vector<Handle> timers_;
  std::uint64_t executed_ = 0;
  std::uint64_t timers_fired_ = 0;
};

struct RunResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
};

template <class Sched, class Handle>
RunResult run_bench(Sched& sched, std::uint64_t warmup, std::uint64_t measured) {
  Workload<Sched, Handle> w(sched);
  w.run_until_count(warmup);
  const std::uint64_t allocs_before = g_alloc_count;
  const auto t0 = std::chrono::steady_clock::now();
  w.run_until_count(warmup + measured);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count - allocs_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  RunResult r;
  const double n = static_cast<double>(w.executed() - warmup);
  r.events_per_sec = secs > 0 ? n / secs : 0;
  r.allocs_per_event = allocs > 0 ? static_cast<double>(allocs) / n : 0.0;
  return r;
}

}  // namespace

int main() {
  using namespace barb;
  using namespace barb::core;
  bench::print_header("Micro-benchmark: event engine",
                      "scheduler throughput / allocation gate (not a paper figure)");
  const auto opt = bench::bench_options();

  telemetry::BenchArtifact artifact("microbench_scheduler");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("chains", static_cast<double>(kChains));

  // The warmup must carry every structure past its steady-state high-water
  // mark (slab chunks, overflow heap capacity, tombstone peak) so that the
  // measured window can assert exactly zero allocations.
  const std::uint64_t warmup = 1'000'000;
  const std::uint64_t measured = bench::fast_mode() ? 1'000'000 : 4'000'000;

  LegacyScheduler legacy;
  const RunResult legacy_r =
      run_bench<LegacyScheduler, LegacyHandle>(legacy, warmup, measured);

  sim::Scheduler heap(sim::Scheduler::Backend::kHeap);
  const RunResult heap_r =
      run_bench<sim::Scheduler, sim::EventHandle>(heap, warmup, measured);

  sim::Scheduler wheel(sim::Scheduler::Backend::kWheel);
  const RunResult wheel_r =
      run_bench<sim::Scheduler, sim::EventHandle>(wheel, warmup, measured);

  const double speedup =
      legacy_r.events_per_sec > 0 ? wheel_r.events_per_sec / legacy_r.events_per_sec
                                  : 0;

  // Per-slot occupancy of the wheel after the measured window (the chains
  // and far-future timers are still pending). This is the serial baseline
  // for shard load-imbalance investigations: a heavily skewed level means
  // a time-sliced partition would idle most shards. Reported only in this
  // micro-bench's own artifact — never in figure timelines.
  TextTable slot_table({"Level", "occupied", "records", "max/slot", "mean/occ"});
  for (int level = 0; level < sim::Scheduler::kLevels; ++level) {
    const auto hist = wheel.slot_histogram(level);
    std::size_t occupied = 0, records = 0, max_slot = 0;
    for (unsigned s = 0; s < sim::Scheduler::kSlots; ++s) {
      if (hist[s] == 0) continue;
      ++occupied;
      records += hist[s];
      max_slot = std::max(max_slot, hist[s]);
      artifact.add_point("slot_occupancy_l" + std::to_string(level),
                         static_cast<double>(s), static_cast<double>(hist[s]));
    }
    const double mean =
        occupied > 0 ? static_cast<double>(records) / static_cast<double>(occupied)
                     : 0.0;
    slot_table.add_row({std::to_string(level), fmt_int(static_cast<double>(occupied)),
                        fmt_int(static_cast<double>(records)),
                        fmt_int(static_cast<double>(max_slot)), fmt(mean)});
    artifact.add_point("slot_records_l" + std::to_string(level), 0,
                       static_cast<double>(records));
  }

  TextTable table({"Engine", "events/s", "allocs/event"});
  table.add_row({"legacy heap (shared_ptr+std::function)",
                 fmt_int(legacy_r.events_per_sec), fmt(legacy_r.allocs_per_event)});
  table.add_row({"slab heap (BARB_SCHED=heap)", fmt_int(heap_r.events_per_sec),
                 fmt(heap_r.allocs_per_event)});
  table.add_row({"timing wheel (default)", fmt_int(wheel_r.events_per_sec),
                 fmt(wheel_r.allocs_per_event)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("wheel vs legacy speedup: %.2fx\n\n", speedup);
  std::printf("wheel per-slot occupancy (pending events after measured window):\n");
  std::printf("%s\n", slot_table.to_string().c_str());
  bench::maybe_write_csv("microbench_scheduler", table);

  artifact.add_point("events_per_sec_legacy", 0, legacy_r.events_per_sec);
  artifact.add_point("events_per_sec_heap", 0, heap_r.events_per_sec);
  artifact.add_point("events_per_sec_wheel", 0, wheel_r.events_per_sec);
  artifact.add_point("speedup_vs_legacy", 0, speedup);
  artifact.add_point("allocs_per_event_legacy", 0, legacy_r.allocs_per_event);
  artifact.add_point("allocs_per_event_wheel", 0, wheel_r.allocs_per_event);
  bench::write_artifact(artifact);

  bool ok = true;
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: wheel speedup %.2fx < 2.0x over legacy engine\n",
                 speedup);
    ok = false;
  }
  if (wheel_r.allocs_per_event != 0.0) {
    std::fprintf(stderr,
                 "FAIL: wheel performed %.6f heap allocations per steady-state "
                 "event (want exactly 0)\n",
                 wheel_r.allocs_per_event);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("PASS: %.2fx >= 2.0x vs legacy, 0 steady-state allocs/event\n",
              speedup);
  return 0;
}
