// Fleet-scale headline bench: aggregate goodput and per-victim flood
// tolerance versus fleet size on a leaf-spine fabric, with a per-host memory
// footprint audit and a batched-vs-per-frame delivery engine comparison.
//
// This is the ROADMAP item 2 experiment: the paper's per-host enforcement
// argument (Figure 3) replayed at fleet scale. Every host carries an EFW
// model NIC with a deny-the-flood rule at depth 32; two plain-NIC attackers
// flood two victims with spoofed UDP while every other host pair runs a
// paced UDP bandwidth measurement across the spine. A healthy distributed
// firewall keeps the victims' pairs near the clean pairs' goodput; a
// centralized-chokepoint design would not.
//
// Not a paper figure, but the artifact honours the repo-wide rule: JSON and
// CSV are byte-identical across --jobs and across runs at the same seed, so
// only deterministic quantities go in (simulated goodput, memory audit,
// scheduler event *counts* and their ratio). Wall-clock measurements — which
// vary run to run — print to stderr, like run_sweep's timings.
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "apps/flood_generator.h"
#include "apps/iperf.h"
#include "bench_common.h"
#include "core/topology.h"
#include "firewall/policy.h"
#include "link/sharded_domain.h"
#include "stack/arp_table.h"
#include "util/assert.h"

namespace {

using namespace barb;

// Per-host policy: flood denied at the paper's depth-32 action rule,
// everything else admitted by the catch-all right after it.
std::string fleet_policy() {
  std::string policy = "default deny\n";
  for (int i = 1; i < 32; ++i) {
    policy += "deny tcp from 192.168." + std::to_string(i / 200) + "." +
              std::to_string(i % 200 + 1) + " to 192.168.250.1\n";
  }
  policy += "deny udp from any to any port " + std::to_string(7777) + "\n";
  policy += "allow any from any to any\n";
  return policy;
}

struct FleetResult {
  int hosts = 0;
  int pairs = 0;
  int pairs_completed = 0;
  double aggregate_mbps = 0.0;
  double victim_mbps = 0.0;  // mean over the flooded victims' pairs
  double clean_mbps = 0.0;   // mean over the un-flooded pairs
  std::uint64_t events_executed = 0;
  double wall_s = 0.0;
  std::size_t mem_per_host = 0;
  std::size_t mem_directory = 0;
  std::uint64_t fib_evictions = 0;
};

constexpr int kAttackers = 2;
constexpr double kPairRateBps = 4e6;
// Below the calibrated ADF(Deny) depth-32 tolerance threshold (~10.6k pps,
// fig3b): a healthy fleet should hold the victims' goodput near clean.
constexpr double kFloodPps = 8000.0;
constexpr std::uint16_t kFloodPort = 7777;

FleetResult run_fleet(int hosts, std::uint64_t seed, bool batched,
                      sim::Duration window) {
  sim::Simulation sim(seed);

  core::LeafSpineSpec spec;
  spec.hosts = hosts;
  spec.hosts_per_leaf = 16;
  spec.spines = 2;
  spec.batched_links = batched;
  // ADF cards fleet-wide: the flood-tolerant model (an EFW fleet would
  // reproduce the deny-flood lockup and flatline the victims — see fig3b).
  spec.nic_for = [](int index) {
    core::NicSpec nic;
    nic.kind = index < kAttackers ? core::FirewallKind::kNone
                                  : core::FirewallKind::kAdf;
    return nic;
  };
  // Parallel DES (opt-in via BARB_DES_SHARDS): hosts on the RNG home shard,
  // switches spread over the rest. Simulated results are byte-identical to
  // serial; only wall-clock and the stderr event-rate lines change. The
  // domain is declared before the fabric so it outlives the links/timers
  // holding EventHandles on its shard schedulers.
  std::unique_ptr<link::ShardedLinkDomain> shard_domain;
  auto fabric = core::build_leaf_spine(sim, spec);
  const int shards = core::des_shards_from_env();
  if (shards > 1) {
    shard_domain = core::make_sharded_domain(
        *fabric, core::partition_fabric(*fabric, shards,
                                        core::ShardPartition::kHostsHome));
  }

  // Install the same deny-flood policy on every firewalled host.
  auto parsed = firewall::parse_policy(fleet_policy());
  BARB_ASSERT(parsed.ok());
  for (int i = kAttackers; i < hosts; ++i) {
    fabric->firewall(i)->install_rule_set(*parsed.rule_set);
  }

  // Pairing: clients are the first half of the non-attacker hosts, servers
  // the second half; pair k crosses the spine. The first kAttackers servers
  // are the flood victims (their pairs measure under attack).
  const int pairs = (hosts - kAttackers) / 2;
  const int first_client = kAttackers;
  const int first_server = kAttackers + pairs;

  std::vector<std::unique_ptr<apps::IperfServer>> servers;
  std::vector<std::unique_ptr<apps::IperfClient>> clients;
  std::vector<apps::IperfResult> results(static_cast<std::size_t>(pairs));
  for (int k = 0; k < pairs; ++k) {
    servers.push_back(std::make_unique<apps::IperfServer>(
        fabric->host(first_server + k)));
    servers.back()->start();
    clients.push_back(std::make_unique<apps::IperfClient>(
        fabric->host(first_client + k), fabric->host(first_server + k).ip()));
  }

  std::vector<std::unique_ptr<apps::FloodGenerator>> floods;
  for (int a = 0; a < kAttackers && a < pairs; ++a) {
    apps::FloodConfig cfg;
    cfg.target = fabric->host(first_server + a).ip();
    cfg.target_port = kFloodPort;
    cfg.rate_pps = kFloodPps;
    cfg.spoof_source = true;
    floods.push_back(
        std::make_unique<apps::FloodGenerator>(fabric->host(a), cfg));
  }

  // Floods ramp first; measurements start staggered (a thousand clients must
  // not SYN-chronize) and run one window each.
  sim.schedule(sim::Duration::milliseconds(5), [&] {
    for (auto& f : floods) f->start();
  });
  for (int k = 0; k < pairs; ++k) {
    const auto start = sim::Duration::milliseconds(10) +
                       sim::Duration::microseconds(37) * k;
    sim.schedule(start, [&, k] {
      clients[static_cast<std::size_t>(k)]->run(
          apps::IperfClient::Mode::kUdp, window,
          [&, k](apps::IperfResult r) { results[static_cast<std::size_t>(k)] = r; },
          kPairRateBps);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::TimePoint::origin() + window + sim::Duration::seconds(2));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  FleetResult out;
  out.hosts = hosts;
  out.pairs = pairs;
  // Control scheduler + every shard wheel: equals the serial count exactly
  // (each cross-shard frame costs one delivery event either way).
  out.events_executed = sim.events_executed();
  out.wall_s = wall;
  double aggregate = 0.0, victim = 0.0, clean = 0.0;
  int victims = 0, cleans = 0;
  for (int k = 0; k < pairs; ++k) {
    const auto& r = results[static_cast<std::size_t>(k)];
    if (r.completed) ++out.pairs_completed;
    aggregate += r.mbps;
    if (k < kAttackers) {
      victim += r.mbps;
      ++victims;
    } else {
      clean += r.mbps;
      ++cleans;
    }
  }
  out.aggregate_mbps = aggregate;
  out.victim_mbps = victims > 0 ? victim / victims : 0.0;
  out.clean_mbps = cleans > 0 ? clean / cleans : 0.0;

  const auto audit = fabric->memory_audit();
  out.mem_per_host = audit.per_host_bytes();
  out.mem_directory = audit.directory_bytes;
  for (int s = 0; s < fabric->num_switches(); ++s) {
    out.fib_evictions += fabric->fabric_switch(s).stats().fib_evictions;
  }
  return out;
}

// What the same fleet's address resolution would cost per host with the
// legacy full-mesh per-host ARP maps (measured on a real ArpTable populated
// with N-1 bindings, not a back-of-envelope guess).
std::size_t fullmesh_arp_bytes_per_host(int hosts) {
  stack::ArpTable table;
  for (int i = 1; i < hosts; ++i) {
    table.add(core::fleet_ip(i), core::fleet_mac(i));
  }
  return table.memory_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace barb;
  using core::TextTable;
  using core::fmt;
  using core::fmt_int;

  bench::print_header("Fleet goodput & flood tolerance vs. fleet size",
                      "ROADMAP item 2 (fleet-scale extension; not a paper figure)");
  const auto opt = bench::bench_options();
  const sim::Duration window =
      bench::fast_mode() ? sim::Duration::milliseconds(300) : sim::Duration::seconds(1);

  std::vector<int> sizes = bench::fast_mode() ? std::vector<int>{64, 512}
                                              : std::vector<int>{64, 256, 512, 1024};

  auto runner = bench::make_runner(argc, argv, opt);
  std::vector<std::function<std::pair<FleetResult, FleetResult>(const core::SweepPoint&)>>
      tasks;
  for (const int n : sizes) {
    tasks.push_back([n, window](const core::SweepPoint& point) {
      // Same seed through both engines: the simulated results must agree
      // byte-for-byte; only the wall-clock/events-rate columns may differ.
      FleetResult batched = run_fleet(n, point.seed, /*batched=*/true, window);
      FleetResult perframe = run_fleet(n, point.seed, /*batched=*/false, window);
      return std::make_pair(batched, perframe);
    });
  }
  const auto results = bench::run_sweep(runner, "fleet_goodput", std::move(tasks));

  telemetry::BenchArtifact artifact("fleet_goodput");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("attackers", static_cast<double>(kAttackers));
  artifact.set_meta("flood_pps", kFloodPps);
  artifact.set_meta("pair_rate_mbps", kPairRateBps / 1e6);

  TextTable table({"Hosts", "Pairs", "Aggregate (Mbps)", "Victim (Mbps)",
                   "Clean (Mbps)", "KiB/host", "KiB/host full-mesh",
                   "Events batched", "Events per-frame"});
  bool identical = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetResult& b = results[i].first;
    const FleetResult& p = results[i].second;
    if (b.aggregate_mbps != p.aggregate_mbps || b.victim_mbps != p.victim_mbps ||
        b.events_executed == 0) {
      // events differ by design (that is the point); goodput must not.
      if (b.aggregate_mbps != p.aggregate_mbps || b.victim_mbps != p.victim_mbps) {
        identical = false;
      }
    }
    const double x = static_cast<double>(b.hosts);
    const std::size_t fullmesh =
        fullmesh_arp_bytes_per_host(b.hosts) + b.mem_per_host -
        (b.mem_directory / static_cast<std::size_t>(b.hosts));
    // The engine comparison's deterministic half: a batched event delivers a
    // whole busy-period quantum, so batched runs execute fewer (bigger)
    // events for the same simulated work. The event counts and their ratio
    // are exact per seed; wall-clock goes to stderr below.
    const double reduction =
        b.events_executed > 0
            ? static_cast<double>(p.events_executed) /
                  static_cast<double>(b.events_executed)
            : 0;
    table.add_row({fmt_int(x), fmt_int(b.pairs), fmt(b.aggregate_mbps),
                   fmt(b.victim_mbps, 2), fmt(b.clean_mbps, 2),
                   fmt(static_cast<double>(b.mem_per_host) / 1024.0),
                   fmt(static_cast<double>(fullmesh) / 1024.0),
                   fmt_int(static_cast<double>(b.events_executed)),
                   fmt_int(static_cast<double>(p.events_executed))});

    artifact.add_point("aggregate_goodput_mbps", x, b.aggregate_mbps);
    artifact.add_point("victim_goodput_mbps", x, b.victim_mbps);
    artifact.add_point("clean_goodput_mbps", x, b.clean_mbps);
    artifact.add_point("pairs_completed", x, static_cast<double>(b.pairs_completed));
    artifact.add_point("mem_per_host_bytes", x, static_cast<double>(b.mem_per_host));
    artifact.add_point("mem_per_host_fullmesh_bytes", x, static_cast<double>(fullmesh));
    artifact.add_point("events_batched", x, static_cast<double>(b.events_executed));
    artifact.add_point("events_perframe", x, static_cast<double>(p.events_executed));
    artifact.add_point("batched_event_reduction", x, reduction);
    artifact.add_point("fib_evictions", x, static_cast<double>(b.fib_evictions));
  }
  std::printf("%s\n", table.to_string().c_str());
  for (const auto& [b, p] : results) {
    std::fprintf(
        stderr,
        "hosts=%d: batched %llu events / %.2fs vs per-frame %llu events / "
        "%.2fs -> wall speedup %.2fx\n",
        b.hosts, static_cast<unsigned long long>(b.events_executed), b.wall_s,
        static_cast<unsigned long long>(p.events_executed), p.wall_s,
        b.wall_s > 0 ? p.wall_s / b.wall_s : 0.0);
  }
  std::printf("\n");
  bench::maybe_write_csv("fleet_goodput", table);
  bench::write_artifact(artifact);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: batched and per-frame delivery disagree on simulated "
                 "goodput (engines must be behaviour-identical)\n");
    return 1;
  }
  std::printf("PASS: batched == per-frame simulated goodput at every size\n");
  return 0;
}
