// Helper for the whole-simulation microbenchmark: one simulated second of
// saturated TCP between two hosts, returning the number of engine events.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/iperf.h"
#include "link/link.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/nic.h"

namespace barb::benchutil {

inline std::uint64_t run_one_simulated_second() {
  sim::Simulation sim(1);
  link::Link link(sim);
  stack::Host a(sim, "a", net::Ipv4Address(10, 0, 0, 1),
                std::make_unique<stack::StandardNic>(
                    sim, net::MacAddress::from_host_id(1), "a/nic"));
  stack::Host b(sim, "b", net::Ipv4Address(10, 0, 0, 2),
                std::make_unique<stack::StandardNic>(
                    sim, net::MacAddress::from_host_id(2), "b/nic"));
  a.nic().attach(link.a());
  b.nic().attach(link.b());
  a.arp().add(b.ip(), b.mac());
  b.arp().add(a.ip(), a.mac());

  apps::IperfServer server(b);
  server.start();
  apps::IperfClient client(a, b.ip());
  client.run(apps::IperfClient::Mode::kTcp, sim::Duration::seconds(1),
             [](apps::IperfResult) {});
  sim.run_for(sim::Duration::milliseconds(1100));
  return sim.events_executed();
}

}  // namespace barb::benchutil
