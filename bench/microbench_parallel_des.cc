// Micro-benchmark: conservative parallel DES engine vs the serial wheel.
//
// Drives a draw-free raw-frame workload — every host on a 1024-host
// leaf-spine (256 in fast mode) periodically injects a UDP frame addressed
// to a host half the fabric away, so most frames cross leaves and therefore
// shards — through two engines:
//
//   serial  : the single timing-wheel Scheduler (the exact default path);
//   sharded : the parallel engine under a kSpread partition (hosts travel
//             with their leaf switch; trunks are the cut), K worker threads.
//
// The workload draws zero random numbers and every periodic source is
// placed directly on its host's shard (ParallelEngine::schedule_on), so
// both engines execute the identical event set. The bench always verifies
// outcome identity — summed access-link tx/rx frames, NIC verdicts, and
// total events executed must match the serial run exactly — and reports
// wall-clock events/s for each engine.
//
// Gate: sharded events/s >= 2x serial. Enforced (nonzero exit) only when
// BARB_REQUIRE_SPEEDUP=1; on machines without enough hardware threads for
// K workers the ratio is informational (EXPERIMENTS.md records measured
// numbers; the engine ships opt-in via BARB_DES_SHARDS). The identity
// check is always enforced.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/topology.h"
#include "link/link.h"
#include "link/sharded_domain.h"
#include "net/packet.h"
#include "net/packet_builder.h"
#include "sim/parallel_engine.h"
#include "sim/simulation.h"
#include "stack/host.h"

namespace {

using namespace barb;

struct WorkloadParams {
  int hosts = 1024;
  int hosts_per_leaf = 16;
  int spines = 2;
  sim::Duration period = sim::Duration::microseconds(100);
  sim::Duration duration = sim::Duration::milliseconds(100);
};

struct RunOutcome {
  std::uint64_t access_tx = 0;
  std::uint64_t access_rx = 0;
  std::uint64_t nic_delivered = 0;
  std::uint64_t nic_dropped = 0;
  std::uint64_t events = 0;
  double wall_secs = 0;
};

// One periodic source: re-injects a prebuilt frame every period. Runs only
// on its host's shard thread (or the single serial thread), so the pooled
// copy always comes from the executing thread's own BufferPool.
struct Source {
  sim::Simulation* sim = nullptr;
  link::LinkPort* port = nullptr;
  std::vector<std::uint8_t> bytes;  // prebuilt frame, owned per source
  sim::Duration period;
  sim::TimePoint stop_at;
  std::uint64_t sent = 0;

  void tick() {
    port->send(net::Packet(bytes, sim->now(), ++sent));
    const sim::TimePoint next = sim->now() + period;
    if (next < stop_at) {
      sim->schedule_at(next, [this] { tick(); });
    }
  }
};

RunOutcome run_once(const WorkloadParams& p, int shards) {
  sim::Simulation sim(1);
  core::LeafSpineSpec spec;
  spec.hosts = p.hosts;
  spec.hosts_per_leaf = p.hosts_per_leaf;
  spec.spines = p.spines;
  // Declared before the fabric: the domain's shard schedulers must outlive
  // the links whose destructors cancel EventHandles living on them.
  std::unique_ptr<link::ShardedLinkDomain> domain;
  auto fabric = core::build_leaf_spine(sim, spec);
  core::ShardPlan plan;
  if (shards > 1) {
    // kSpread keeps each host on its leaf's shard: access links stay
    // shard-internal and only trunks are cut. The workload is draw-free,
    // which is what lets the RNG home shard be "nowhere".
    plan = core::partition_fabric(*fabric, shards,
                                  core::ShardPartition::kSpread);
    domain = core::make_sharded_domain(*fabric, plan);
  }

  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(static_cast<std::size_t>(p.hosts));
  for (int i = 0; i < p.hosts; ++i) {
    auto src = std::make_unique<Source>();
    src->sim = &sim;
    src->port = fabric->host(i).nic().port();
    const int target = (i + p.hosts / 2) % p.hosts;
    net::IpEndpoints ep;
    ep.src_ip = fabric->host(i).ip();
    ep.dst_ip = fabric->host(target).ip();
    ep.src_mac = fabric->host(i).mac();
    ep.dst_mac = fabric->host(target).mac();
    std::vector<std::uint8_t> payload(64, static_cast<std::uint8_t>(i));
    src->bytes = net::build_udp_frame(ep, 9000, 9000, payload);
    src->period = p.period;
    src->stop_at = sim::TimePoint() + p.duration;
    // Stagger first ticks so shards start with distinct timestamps.
    const sim::TimePoint first =
        sim::TimePoint() +
        sim::Duration::nanoseconds(100 + 97 * static_cast<std::int64_t>(i));
    Source* raw = src.get();
    if (domain != nullptr) {
      domain->engine().schedule_on(plan.host_shard[static_cast<std::size_t>(i)],
                                   first, [raw] { raw->tick(); });
    } else {
      sim.schedule_at(first, [raw] { raw->tick(); });
    }
    sources.push_back(std::move(src));
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::TimePoint() + p.duration + sim::Duration::milliseconds(10));
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.wall_secs = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.events_executed();
  for (int i = 0; i < p.hosts; ++i) {
    const auto& nic = fabric->host(i).nic().stats();
    out.nic_delivered += nic.rx_delivered;
    out.nic_dropped += nic.rx_dropped;
    if (auto* port = fabric->host(i).nic().port()) {
      out.access_tx += port->stats().tx_frames;
      out.access_rx += port->stats().rx_frames;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace barb::core;
  bench::print_header(
      "Micro-benchmark: parallel DES engine",
      "sharded-vs-serial speedup / identity gate (not a paper figure)");
  const auto opt = bench::bench_options();

  WorkloadParams p;
  if (bench::fast_mode()) {
    p.hosts = 256;
    p.duration = sim::Duration::milliseconds(20);
  }
  const int env_shards = des_shards_from_env();
  const int shards = env_shards > 1 ? env_shards : 4;

  std::fprintf(stderr, "(hosts=%d shards=%d hw_threads=%u)\n", p.hosts, shards,
               std::thread::hardware_concurrency());

  const RunOutcome serial = run_once(p, 1);
  const RunOutcome sharded = run_once(p, shards);

  const double serial_eps =
      serial.wall_secs > 0 ? static_cast<double>(serial.events) / serial.wall_secs : 0;
  const double sharded_eps =
      sharded.wall_secs > 0 ? static_cast<double>(sharded.events) / sharded.wall_secs
                            : 0;
  const double speedup = serial_eps > 0 ? sharded_eps / serial_eps : 0;

  TextTable table({"Engine", "events", "wall s", "events/s"});
  table.add_row({"serial wheel", fmt_int(static_cast<double>(serial.events)),
                 fmt(serial.wall_secs), fmt_int(serial_eps)});
  table.add_row({"sharded x" + std::to_string(shards),
                 fmt_int(static_cast<double>(sharded.events)),
                 fmt(sharded.wall_secs), fmt_int(sharded_eps)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("sharded vs serial speedup: %.2fx\n\n", speedup);
  bench::maybe_write_csv("microbench_parallel_des", table);

  barb::telemetry::BenchArtifact artifact("microbench_parallel_des");
  bench::set_common_meta(artifact, opt);
  artifact.set_meta("hosts", static_cast<double>(p.hosts));
  artifact.set_meta("shards", static_cast<double>(shards));
  artifact.add_point("events_per_sec_serial", 0, serial_eps);
  artifact.add_point("events_per_sec_sharded", 0, sharded_eps);
  artifact.add_point("speedup", 0, speedup);
  bench::write_artifact(artifact);

  // Outcome identity is the hard gate: the parallel engine is only an
  // execution strategy, never a model change.
  bool ok = true;
  if (serial.access_tx != sharded.access_tx ||
      serial.access_rx != sharded.access_rx) {
    std::fprintf(stderr,
                 "FAIL: access-link frame counts diverged (tx %llu vs %llu, "
                 "rx %llu vs %llu)\n",
                 static_cast<unsigned long long>(serial.access_tx),
                 static_cast<unsigned long long>(sharded.access_tx),
                 static_cast<unsigned long long>(serial.access_rx),
                 static_cast<unsigned long long>(sharded.access_rx));
    ok = false;
  }
  if (serial.nic_delivered != sharded.nic_delivered ||
      serial.nic_dropped != sharded.nic_dropped) {
    std::fprintf(stderr,
                 "FAIL: NIC verdicts diverged (delivered %llu vs %llu, "
                 "dropped %llu vs %llu)\n",
                 static_cast<unsigned long long>(serial.nic_delivered),
                 static_cast<unsigned long long>(sharded.nic_delivered),
                 static_cast<unsigned long long>(serial.nic_dropped),
                 static_cast<unsigned long long>(sharded.nic_dropped));
    ok = false;
  }
  if (serial.events != sharded.events) {
    std::fprintf(stderr, "FAIL: event counts diverged (%llu vs %llu)\n",
                 static_cast<unsigned long long>(serial.events),
                 static_cast<unsigned long long>(sharded.events));
    ok = false;
  }
  if (!ok) return 1;

  const char* require = std::getenv("BARB_REQUIRE_SPEEDUP");
  const bool enforce = require != nullptr && require[0] == '1';
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "%s: sharded speedup %.2fx < 2.0x over serial "
                 "(%u hardware threads for %d shard workers)\n",
                 enforce ? "FAIL" : "NOTE", speedup,
                 std::thread::hardware_concurrency(), shards);
    if (enforce) return 1;
    std::printf(
        "PASS: outcomes identical (speedup %.2fx informational; set "
        "BARB_REQUIRE_SPEEDUP=1 to enforce >= 2x)\n",
        speedup);
    return 0;
  }
  std::printf("PASS: outcomes identical, %.2fx >= 2.0x vs serial\n", speedup);
  return 0;
}
