# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dos_flood_demo "/root/repo/build/examples/dos_flood_demo" "8")
set_tests_properties(example_dos_flood_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_distribution "/root/repo/build/examples/policy_distribution")
set_tests_properties(example_policy_distribution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vpg_secure_channel "/root/repo/build/examples/vpg_secure_channel")
set_tests_properties(example_vpg_secure_channel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_webserver_protection "/root/repo/build/examples/webserver_protection")
set_tests_properties(example_webserver_protection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barbsim_bandwidth "/root/repo/build/examples/barbsim" "--firewall" "efw" "--depth" "32" "--experiment" "bandwidth" "--window" "0.5" "--reps" "1")
set_tests_properties(example_barbsim_bandwidth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barbsim_flood "/root/repo/build/examples/barbsim" "--firewall" "adf" "--depth" "1" "--experiment" "flood" "--flood-rate" "30000" "--window" "0.5" "--reps" "1")
set_tests_properties(example_barbsim_flood PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barbsim_ping "/root/repo/build/examples/barbsim" "--firewall" "adf" "--depth" "64" "--experiment" "ping")
set_tests_properties(example_barbsim_ping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
