file(REMOVE_RECURSE
  "CMakeFiles/vpg_secure_channel.dir/vpg_secure_channel.cpp.o"
  "CMakeFiles/vpg_secure_channel.dir/vpg_secure_channel.cpp.o.d"
  "vpg_secure_channel"
  "vpg_secure_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpg_secure_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
