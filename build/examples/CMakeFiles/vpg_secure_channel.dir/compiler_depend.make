# Empty compiler generated dependencies file for vpg_secure_channel.
# This may be replaced when dependencies are built.
