# Empty dependencies file for dos_flood_demo.
# This may be replaced when dependencies are built.
