file(REMOVE_RECURSE
  "CMakeFiles/dos_flood_demo.dir/dos_flood_demo.cpp.o"
  "CMakeFiles/dos_flood_demo.dir/dos_flood_demo.cpp.o.d"
  "dos_flood_demo"
  "dos_flood_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_flood_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
