file(REMOVE_RECURSE
  "CMakeFiles/policy_distribution.dir/policy_distribution.cpp.o"
  "CMakeFiles/policy_distribution.dir/policy_distribution.cpp.o.d"
  "policy_distribution"
  "policy_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
