# Empty dependencies file for policy_distribution.
# This may be replaced when dependencies are built.
