# Empty dependencies file for barbsim.
# This may be replaced when dependencies are built.
