file(REMOVE_RECURSE
  "CMakeFiles/barbsim.dir/barbsim.cpp.o"
  "CMakeFiles/barbsim.dir/barbsim.cpp.o.d"
  "barbsim"
  "barbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
