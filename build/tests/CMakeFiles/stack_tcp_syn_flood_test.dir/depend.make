# Empty dependencies file for stack_tcp_syn_flood_test.
# This may be replaced when dependencies are built.
