file(REMOVE_RECURSE
  "CMakeFiles/stack_tcp_syn_flood_test.dir/stack/tcp_syn_flood_test.cc.o"
  "CMakeFiles/stack_tcp_syn_flood_test.dir/stack/tcp_syn_flood_test.cc.o.d"
  "stack_tcp_syn_flood_test"
  "stack_tcp_syn_flood_test.pdb"
  "stack_tcp_syn_flood_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_tcp_syn_flood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
