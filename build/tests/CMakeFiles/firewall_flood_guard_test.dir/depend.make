# Empty dependencies file for firewall_flood_guard_test.
# This may be replaced when dependencies are built.
