file(REMOVE_RECURSE
  "CMakeFiles/firewall_flood_guard_test.dir/firewall/flood_guard_test.cc.o"
  "CMakeFiles/firewall_flood_guard_test.dir/firewall/flood_guard_test.cc.o.d"
  "firewall_flood_guard_test"
  "firewall_flood_guard_test.pdb"
  "firewall_flood_guard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_flood_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
