# Empty compiler generated dependencies file for net_frame_view_test.
# This may be replaced when dependencies are built.
