file(REMOVE_RECURSE
  "CMakeFiles/firewall_software_firewall_test.dir/firewall/software_firewall_test.cc.o"
  "CMakeFiles/firewall_software_firewall_test.dir/firewall/software_firewall_test.cc.o.d"
  "firewall_software_firewall_test"
  "firewall_software_firewall_test.pdb"
  "firewall_software_firewall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_software_firewall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
