file(REMOVE_RECURSE
  "CMakeFiles/firewall_fuzz_test.dir/firewall/fuzz_test.cc.o"
  "CMakeFiles/firewall_fuzz_test.dir/firewall/fuzz_test.cc.o.d"
  "firewall_fuzz_test"
  "firewall_fuzz_test.pdb"
  "firewall_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
