# Empty dependencies file for firewall_fuzz_test.
# This may be replaced when dependencies are built.
