# Empty compiler generated dependencies file for firewall_rule_set_test.
# This may be replaced when dependencies are built.
