file(REMOVE_RECURSE
  "CMakeFiles/firewall_rule_set_test.dir/firewall/rule_set_test.cc.o"
  "CMakeFiles/firewall_rule_set_test.dir/firewall/rule_set_test.cc.o.d"
  "firewall_rule_set_test"
  "firewall_rule_set_test.pdb"
  "firewall_rule_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_rule_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
