file(REMOVE_RECURSE
  "CMakeFiles/link_link_test.dir/link/link_test.cc.o"
  "CMakeFiles/link_link_test.dir/link/link_test.cc.o.d"
  "link_link_test"
  "link_link_test.pdb"
  "link_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
