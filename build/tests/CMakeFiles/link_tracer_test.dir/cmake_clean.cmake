file(REMOVE_RECURSE
  "CMakeFiles/link_tracer_test.dir/link/tracer_test.cc.o"
  "CMakeFiles/link_tracer_test.dir/link/tracer_test.cc.o.d"
  "link_tracer_test"
  "link_tracer_test.pdb"
  "link_tracer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
