file(REMOVE_RECURSE
  "CMakeFiles/util_token_bucket_test.dir/util/token_bucket_test.cc.o"
  "CMakeFiles/util_token_bucket_test.dir/util/token_bucket_test.cc.o.d"
  "util_token_bucket_test"
  "util_token_bucket_test.pdb"
  "util_token_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_token_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
