file(REMOVE_RECURSE
  "CMakeFiles/firewall_policy_protocol_test.dir/firewall/policy_protocol_test.cc.o"
  "CMakeFiles/firewall_policy_protocol_test.dir/firewall/policy_protocol_test.cc.o.d"
  "firewall_policy_protocol_test"
  "firewall_policy_protocol_test.pdb"
  "firewall_policy_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_policy_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
