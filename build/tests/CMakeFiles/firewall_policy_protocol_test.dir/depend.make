# Empty dependencies file for firewall_policy_protocol_test.
# This may be replaced when dependencies are built.
