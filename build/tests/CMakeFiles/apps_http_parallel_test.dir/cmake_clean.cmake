file(REMOVE_RECURSE
  "CMakeFiles/apps_http_parallel_test.dir/apps/http_parallel_test.cc.o"
  "CMakeFiles/apps_http_parallel_test.dir/apps/http_parallel_test.cc.o.d"
  "apps_http_parallel_test"
  "apps_http_parallel_test.pdb"
  "apps_http_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_http_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
