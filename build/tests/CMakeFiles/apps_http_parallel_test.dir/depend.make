# Empty dependencies file for apps_http_parallel_test.
# This may be replaced when dependencies are built.
