# Empty dependencies file for apps_ping_test.
# This may be replaced when dependencies are built.
