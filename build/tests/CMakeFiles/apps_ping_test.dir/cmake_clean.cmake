file(REMOVE_RECURSE
  "CMakeFiles/apps_ping_test.dir/apps/ping_test.cc.o"
  "CMakeFiles/apps_ping_test.dir/apps/ping_test.cc.o.d"
  "apps_ping_test"
  "apps_ping_test.pdb"
  "apps_ping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_ping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
