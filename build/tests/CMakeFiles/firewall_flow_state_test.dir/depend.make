# Empty dependencies file for firewall_flow_state_test.
# This may be replaced when dependencies are built.
