file(REMOVE_RECURSE
  "CMakeFiles/firewall_flow_state_test.dir/firewall/flow_state_test.cc.o"
  "CMakeFiles/firewall_flow_state_test.dir/firewall/flow_state_test.cc.o.d"
  "firewall_flow_state_test"
  "firewall_flow_state_test.pdb"
  "firewall_flow_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_flow_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
