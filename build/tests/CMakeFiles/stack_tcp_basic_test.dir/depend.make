# Empty dependencies file for stack_tcp_basic_test.
# This may be replaced when dependencies are built.
