# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for link_star_topology_test.
