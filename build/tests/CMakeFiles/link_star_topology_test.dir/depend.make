# Empty dependencies file for link_star_topology_test.
# This may be replaced when dependencies are built.
