file(REMOVE_RECURSE
  "CMakeFiles/link_star_topology_test.dir/link/star_topology_test.cc.o"
  "CMakeFiles/link_star_topology_test.dir/link/star_topology_test.cc.o.d"
  "link_star_topology_test"
  "link_star_topology_test.pdb"
  "link_star_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_star_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
