# Empty dependencies file for net_frame_fuzz_test.
# This may be replaced when dependencies are built.
