# Empty compiler generated dependencies file for stack_tcp_loss_test.
# This may be replaced when dependencies are built.
