file(REMOVE_RECURSE
  "CMakeFiles/firewall_vpg_test.dir/firewall/vpg_test.cc.o"
  "CMakeFiles/firewall_vpg_test.dir/firewall/vpg_test.cc.o.d"
  "firewall_vpg_test"
  "firewall_vpg_test.pdb"
  "firewall_vpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_vpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
