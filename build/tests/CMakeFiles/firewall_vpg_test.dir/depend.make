# Empty dependencies file for firewall_vpg_test.
# This may be replaced when dependencies are built.
