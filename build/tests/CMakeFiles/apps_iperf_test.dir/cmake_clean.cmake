file(REMOVE_RECURSE
  "CMakeFiles/apps_iperf_test.dir/apps/iperf_test.cc.o"
  "CMakeFiles/apps_iperf_test.dir/apps/iperf_test.cc.o.d"
  "apps_iperf_test"
  "apps_iperf_test.pdb"
  "apps_iperf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_iperf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
