# Empty dependencies file for apps_iperf_test.
# This may be replaced when dependencies are built.
