# Empty dependencies file for crypto_poly1305_test.
# This may be replaced when dependencies are built.
