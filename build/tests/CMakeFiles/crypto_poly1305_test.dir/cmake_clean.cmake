file(REMOVE_RECURSE
  "CMakeFiles/crypto_poly1305_test.dir/crypto/poly1305_test.cc.o"
  "CMakeFiles/crypto_poly1305_test.dir/crypto/poly1305_test.cc.o.d"
  "crypto_poly1305_test"
  "crypto_poly1305_test.pdb"
  "crypto_poly1305_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_poly1305_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
