# Empty dependencies file for stack_tcp_edge_test.
# This may be replaced when dependencies are built.
