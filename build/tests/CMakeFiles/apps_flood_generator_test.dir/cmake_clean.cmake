file(REMOVE_RECURSE
  "CMakeFiles/apps_flood_generator_test.dir/apps/flood_generator_test.cc.o"
  "CMakeFiles/apps_flood_generator_test.dir/apps/flood_generator_test.cc.o.d"
  "apps_flood_generator_test"
  "apps_flood_generator_test.pdb"
  "apps_flood_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_flood_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
