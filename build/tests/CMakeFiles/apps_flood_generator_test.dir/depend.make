# Empty dependencies file for apps_flood_generator_test.
# This may be replaced when dependencies are built.
