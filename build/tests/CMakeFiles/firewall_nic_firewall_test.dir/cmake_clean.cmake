file(REMOVE_RECURSE
  "CMakeFiles/firewall_nic_firewall_test.dir/firewall/nic_firewall_test.cc.o"
  "CMakeFiles/firewall_nic_firewall_test.dir/firewall/nic_firewall_test.cc.o.d"
  "firewall_nic_firewall_test"
  "firewall_nic_firewall_test.pdb"
  "firewall_nic_firewall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_nic_firewall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
