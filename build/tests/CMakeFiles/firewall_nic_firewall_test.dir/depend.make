# Empty dependencies file for firewall_nic_firewall_test.
# This may be replaced when dependencies are built.
