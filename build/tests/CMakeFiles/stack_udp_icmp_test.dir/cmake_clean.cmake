file(REMOVE_RECURSE
  "CMakeFiles/stack_udp_icmp_test.dir/stack/udp_icmp_test.cc.o"
  "CMakeFiles/stack_udp_icmp_test.dir/stack/udp_icmp_test.cc.o.d"
  "stack_udp_icmp_test"
  "stack_udp_icmp_test.pdb"
  "stack_udp_icmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_udp_icmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
