# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stack_udp_icmp_test.
