# Empty compiler generated dependencies file for stack_udp_icmp_test.
# This may be replaced when dependencies are built.
