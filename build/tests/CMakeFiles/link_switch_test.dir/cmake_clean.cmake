file(REMOVE_RECURSE
  "CMakeFiles/link_switch_test.dir/link/switch_test.cc.o"
  "CMakeFiles/link_switch_test.dir/link/switch_test.cc.o.d"
  "link_switch_test"
  "link_switch_test.pdb"
  "link_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
