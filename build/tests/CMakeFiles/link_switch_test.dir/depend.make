# Empty dependencies file for link_switch_test.
# This may be replaced when dependencies are built.
