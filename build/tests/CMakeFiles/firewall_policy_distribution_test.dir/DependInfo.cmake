
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/firewall/policy_distribution_test.cc" "tests/CMakeFiles/firewall_policy_distribution_test.dir/firewall/policy_distribution_test.cc.o" "gcc" "tests/CMakeFiles/firewall_policy_distribution_test.dir/firewall/policy_distribution_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/barb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/barb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/barb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/barb_link.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/barb_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/barb_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/barb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/barb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
