# Empty dependencies file for firewall_policy_distribution_test.
# This may be replaced when dependencies are built.
