file(REMOVE_RECURSE
  "CMakeFiles/stack_nic_host_test.dir/stack/nic_host_test.cc.o"
  "CMakeFiles/stack_nic_host_test.dir/stack/nic_host_test.cc.o.d"
  "stack_nic_host_test"
  "stack_nic_host_test.pdb"
  "stack_nic_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_nic_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
