# Empty dependencies file for stack_nic_host_test.
# This may be replaced when dependencies are built.
