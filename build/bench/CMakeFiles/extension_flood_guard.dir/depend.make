# Empty dependencies file for extension_flood_guard.
# This may be replaced when dependencies are built.
