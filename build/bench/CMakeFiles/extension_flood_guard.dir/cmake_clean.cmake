file(REMOVE_RECURSE
  "CMakeFiles/extension_flood_guard.dir/extension_flood_guard.cc.o"
  "CMakeFiles/extension_flood_guard.dir/extension_flood_guard.cc.o.d"
  "extension_flood_guard"
  "extension_flood_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_flood_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
