file(REMOVE_RECURSE
  "CMakeFiles/iptables_sweep.dir/iptables_sweep.cc.o"
  "CMakeFiles/iptables_sweep.dir/iptables_sweep.cc.o.d"
  "iptables_sweep"
  "iptables_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iptables_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
