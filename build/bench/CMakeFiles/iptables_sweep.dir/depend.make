# Empty dependencies file for iptables_sweep.
# This may be replaced when dependencies are built.
