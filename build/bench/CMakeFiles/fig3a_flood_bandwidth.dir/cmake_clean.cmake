file(REMOVE_RECURSE
  "CMakeFiles/fig3a_flood_bandwidth.dir/fig3a_flood_bandwidth.cc.o"
  "CMakeFiles/fig3a_flood_bandwidth.dir/fig3a_flood_bandwidth.cc.o.d"
  "fig3a_flood_bandwidth"
  "fig3a_flood_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_flood_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
