# Empty dependencies file for fig3a_flood_bandwidth.
# This may be replaced when dependencies are built.
