# Empty dependencies file for table1_http.
# This may be replaced when dependencies are built.
