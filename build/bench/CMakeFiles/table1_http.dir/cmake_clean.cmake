file(REMOVE_RECURSE
  "CMakeFiles/table1_http.dir/table1_http.cc.o"
  "CMakeFiles/table1_http.dir/table1_http.cc.o.d"
  "table1_http"
  "table1_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
