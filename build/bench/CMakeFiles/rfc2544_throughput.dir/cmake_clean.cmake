file(REMOVE_RECURSE
  "CMakeFiles/rfc2544_throughput.dir/rfc2544_throughput.cc.o"
  "CMakeFiles/rfc2544_throughput.dir/rfc2544_throughput.cc.o.d"
  "rfc2544_throughput"
  "rfc2544_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfc2544_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
