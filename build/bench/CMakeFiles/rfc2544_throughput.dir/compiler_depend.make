# Empty compiler generated dependencies file for rfc2544_throughput.
# This may be replaced when dependencies are built.
