file(REMOVE_RECURSE
  "CMakeFiles/ablation_spoofing.dir/ablation_spoofing.cc.o"
  "CMakeFiles/ablation_spoofing.dir/ablation_spoofing.cc.o.d"
  "ablation_spoofing"
  "ablation_spoofing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spoofing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
