# Empty dependencies file for ablation_spoofing.
# This may be replaced when dependencies are built.
