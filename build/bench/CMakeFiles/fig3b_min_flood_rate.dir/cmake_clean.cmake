file(REMOVE_RECURSE
  "CMakeFiles/fig3b_min_flood_rate.dir/fig3b_min_flood_rate.cc.o"
  "CMakeFiles/fig3b_min_flood_rate.dir/fig3b_min_flood_rate.cc.o.d"
  "fig3b_min_flood_rate"
  "fig3b_min_flood_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_min_flood_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
