# Empty compiler generated dependencies file for fig3b_min_flood_rate.
# This may be replaced when dependencies are built.
