file(REMOVE_RECURSE
  "CMakeFiles/ablation_vpg_crypto.dir/ablation_vpg_crypto.cc.o"
  "CMakeFiles/ablation_vpg_crypto.dir/ablation_vpg_crypto.cc.o.d"
  "ablation_vpg_crypto"
  "ablation_vpg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vpg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
