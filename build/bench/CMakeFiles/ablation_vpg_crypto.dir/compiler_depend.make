# Empty compiler generated dependencies file for ablation_vpg_crypto.
# This may be replaced when dependencies are built.
