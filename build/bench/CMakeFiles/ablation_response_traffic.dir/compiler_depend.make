# Empty compiler generated dependencies file for ablation_response_traffic.
# This may be replaced when dependencies are built.
