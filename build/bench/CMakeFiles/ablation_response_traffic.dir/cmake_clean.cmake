file(REMOVE_RECURSE
  "CMakeFiles/ablation_response_traffic.dir/ablation_response_traffic.cc.o"
  "CMakeFiles/ablation_response_traffic.dir/ablation_response_traffic.cc.o.d"
  "ablation_response_traffic"
  "ablation_response_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_response_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
