file(REMOVE_RECURSE
  "CMakeFiles/ablation_stateful_nic.dir/ablation_stateful_nic.cc.o"
  "CMakeFiles/ablation_stateful_nic.dir/ablation_stateful_nic.cc.o.d"
  "ablation_stateful_nic"
  "ablation_stateful_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stateful_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
