# Empty compiler generated dependencies file for ablation_stateful_nic.
# This may be replaced when dependencies are built.
