# Empty dependencies file for barb_link.
# This may be replaced when dependencies are built.
