file(REMOVE_RECURSE
  "CMakeFiles/barb_link.dir/link.cc.o"
  "CMakeFiles/barb_link.dir/link.cc.o.d"
  "CMakeFiles/barb_link.dir/switch.cc.o"
  "CMakeFiles/barb_link.dir/switch.cc.o.d"
  "CMakeFiles/barb_link.dir/tracer.cc.o"
  "CMakeFiles/barb_link.dir/tracer.cc.o.d"
  "libbarb_link.a"
  "libbarb_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
