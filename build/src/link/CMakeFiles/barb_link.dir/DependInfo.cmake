
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/link.cc" "src/link/CMakeFiles/barb_link.dir/link.cc.o" "gcc" "src/link/CMakeFiles/barb_link.dir/link.cc.o.d"
  "/root/repo/src/link/switch.cc" "src/link/CMakeFiles/barb_link.dir/switch.cc.o" "gcc" "src/link/CMakeFiles/barb_link.dir/switch.cc.o.d"
  "/root/repo/src/link/tracer.cc" "src/link/CMakeFiles/barb_link.dir/tracer.cc.o" "gcc" "src/link/CMakeFiles/barb_link.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/barb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/barb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
