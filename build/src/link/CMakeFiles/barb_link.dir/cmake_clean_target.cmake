file(REMOVE_RECURSE
  "libbarb_link.a"
)
