# Empty compiler generated dependencies file for barb_apps.
# This may be replaced when dependencies are built.
