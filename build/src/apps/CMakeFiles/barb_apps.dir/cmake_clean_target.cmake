file(REMOVE_RECURSE
  "libbarb_apps.a"
)
