file(REMOVE_RECURSE
  "CMakeFiles/barb_apps.dir/flood_generator.cc.o"
  "CMakeFiles/barb_apps.dir/flood_generator.cc.o.d"
  "CMakeFiles/barb_apps.dir/http.cc.o"
  "CMakeFiles/barb_apps.dir/http.cc.o.d"
  "CMakeFiles/barb_apps.dir/iperf.cc.o"
  "CMakeFiles/barb_apps.dir/iperf.cc.o.d"
  "CMakeFiles/barb_apps.dir/ping.cc.o"
  "CMakeFiles/barb_apps.dir/ping.cc.o.d"
  "libbarb_apps.a"
  "libbarb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
