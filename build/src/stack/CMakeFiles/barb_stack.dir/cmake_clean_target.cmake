file(REMOVE_RECURSE
  "libbarb_stack.a"
)
