file(REMOVE_RECURSE
  "CMakeFiles/barb_stack.dir/host.cc.o"
  "CMakeFiles/barb_stack.dir/host.cc.o.d"
  "CMakeFiles/barb_stack.dir/tcp.cc.o"
  "CMakeFiles/barb_stack.dir/tcp.cc.o.d"
  "CMakeFiles/barb_stack.dir/udp.cc.o"
  "CMakeFiles/barb_stack.dir/udp.cc.o.d"
  "libbarb_stack.a"
  "libbarb_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
