# Empty compiler generated dependencies file for barb_stack.
# This may be replaced when dependencies are built.
