file(REMOVE_RECURSE
  "libbarb_firewall.a"
)
