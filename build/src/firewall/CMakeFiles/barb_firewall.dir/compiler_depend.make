# Empty compiler generated dependencies file for barb_firewall.
# This may be replaced when dependencies are built.
