
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firewall/flood_guard.cc" "src/firewall/CMakeFiles/barb_firewall.dir/flood_guard.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/flood_guard.cc.o.d"
  "/root/repo/src/firewall/flow_state.cc" "src/firewall/CMakeFiles/barb_firewall.dir/flow_state.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/flow_state.cc.o.d"
  "/root/repo/src/firewall/nic_firewall.cc" "src/firewall/CMakeFiles/barb_firewall.dir/nic_firewall.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/nic_firewall.cc.o.d"
  "/root/repo/src/firewall/policy.cc" "src/firewall/CMakeFiles/barb_firewall.dir/policy.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/policy.cc.o.d"
  "/root/repo/src/firewall/policy_agent.cc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_agent.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_agent.cc.o.d"
  "/root/repo/src/firewall/policy_protocol.cc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_protocol.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_protocol.cc.o.d"
  "/root/repo/src/firewall/policy_server.cc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_server.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/policy_server.cc.o.d"
  "/root/repo/src/firewall/rule_set.cc" "src/firewall/CMakeFiles/barb_firewall.dir/rule_set.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/rule_set.cc.o.d"
  "/root/repo/src/firewall/software_firewall.cc" "src/firewall/CMakeFiles/barb_firewall.dir/software_firewall.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/software_firewall.cc.o.d"
  "/root/repo/src/firewall/vpg.cc" "src/firewall/CMakeFiles/barb_firewall.dir/vpg.cc.o" "gcc" "src/firewall/CMakeFiles/barb_firewall.dir/vpg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/barb_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/barb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/barb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/barb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/barb_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
