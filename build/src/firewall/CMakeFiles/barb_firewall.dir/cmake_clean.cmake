file(REMOVE_RECURSE
  "CMakeFiles/barb_firewall.dir/flood_guard.cc.o"
  "CMakeFiles/barb_firewall.dir/flood_guard.cc.o.d"
  "CMakeFiles/barb_firewall.dir/flow_state.cc.o"
  "CMakeFiles/barb_firewall.dir/flow_state.cc.o.d"
  "CMakeFiles/barb_firewall.dir/nic_firewall.cc.o"
  "CMakeFiles/barb_firewall.dir/nic_firewall.cc.o.d"
  "CMakeFiles/barb_firewall.dir/policy.cc.o"
  "CMakeFiles/barb_firewall.dir/policy.cc.o.d"
  "CMakeFiles/barb_firewall.dir/policy_agent.cc.o"
  "CMakeFiles/barb_firewall.dir/policy_agent.cc.o.d"
  "CMakeFiles/barb_firewall.dir/policy_protocol.cc.o"
  "CMakeFiles/barb_firewall.dir/policy_protocol.cc.o.d"
  "CMakeFiles/barb_firewall.dir/policy_server.cc.o"
  "CMakeFiles/barb_firewall.dir/policy_server.cc.o.d"
  "CMakeFiles/barb_firewall.dir/rule_set.cc.o"
  "CMakeFiles/barb_firewall.dir/rule_set.cc.o.d"
  "CMakeFiles/barb_firewall.dir/software_firewall.cc.o"
  "CMakeFiles/barb_firewall.dir/software_firewall.cc.o.d"
  "CMakeFiles/barb_firewall.dir/vpg.cc.o"
  "CMakeFiles/barb_firewall.dir/vpg.cc.o.d"
  "libbarb_firewall.a"
  "libbarb_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
