file(REMOVE_RECURSE
  "CMakeFiles/barb_net.dir/checksum.cc.o"
  "CMakeFiles/barb_net.dir/checksum.cc.o.d"
  "CMakeFiles/barb_net.dir/frame_view.cc.o"
  "CMakeFiles/barb_net.dir/frame_view.cc.o.d"
  "CMakeFiles/barb_net.dir/ipv4_address.cc.o"
  "CMakeFiles/barb_net.dir/ipv4_address.cc.o.d"
  "CMakeFiles/barb_net.dir/mac_address.cc.o"
  "CMakeFiles/barb_net.dir/mac_address.cc.o.d"
  "CMakeFiles/barb_net.dir/packet_builder.cc.o"
  "CMakeFiles/barb_net.dir/packet_builder.cc.o.d"
  "libbarb_net.a"
  "libbarb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
