file(REMOVE_RECURSE
  "libbarb_net.a"
)
