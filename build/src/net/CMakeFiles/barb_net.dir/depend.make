# Empty dependencies file for barb_net.
# This may be replaced when dependencies are built.
