
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/barb_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/barb_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/frame_view.cc" "src/net/CMakeFiles/barb_net.dir/frame_view.cc.o" "gcc" "src/net/CMakeFiles/barb_net.dir/frame_view.cc.o.d"
  "/root/repo/src/net/ipv4_address.cc" "src/net/CMakeFiles/barb_net.dir/ipv4_address.cc.o" "gcc" "src/net/CMakeFiles/barb_net.dir/ipv4_address.cc.o.d"
  "/root/repo/src/net/mac_address.cc" "src/net/CMakeFiles/barb_net.dir/mac_address.cc.o" "gcc" "src/net/CMakeFiles/barb_net.dir/mac_address.cc.o.d"
  "/root/repo/src/net/packet_builder.cc" "src/net/CMakeFiles/barb_net.dir/packet_builder.cc.o" "gcc" "src/net/CMakeFiles/barb_net.dir/packet_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/barb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
