file(REMOVE_RECURSE
  "libbarb_sim.a"
)
