# Empty compiler generated dependencies file for barb_sim.
# This may be replaced when dependencies are built.
