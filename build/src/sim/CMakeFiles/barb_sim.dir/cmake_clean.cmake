file(REMOVE_RECURSE
  "CMakeFiles/barb_sim.dir/time.cc.o"
  "CMakeFiles/barb_sim.dir/time.cc.o.d"
  "libbarb_sim.a"
  "libbarb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
