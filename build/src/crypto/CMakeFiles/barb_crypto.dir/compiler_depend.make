# Empty compiler generated dependencies file for barb_crypto.
# This may be replaced when dependencies are built.
