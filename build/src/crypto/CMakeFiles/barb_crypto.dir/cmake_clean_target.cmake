file(REMOVE_RECURSE
  "libbarb_crypto.a"
)
