file(REMOVE_RECURSE
  "CMakeFiles/barb_crypto.dir/aead.cc.o"
  "CMakeFiles/barb_crypto.dir/aead.cc.o.d"
  "CMakeFiles/barb_crypto.dir/chacha20.cc.o"
  "CMakeFiles/barb_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/barb_crypto.dir/hmac.cc.o"
  "CMakeFiles/barb_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/barb_crypto.dir/poly1305.cc.o"
  "CMakeFiles/barb_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/barb_crypto.dir/sha256.cc.o"
  "CMakeFiles/barb_crypto.dir/sha256.cc.o.d"
  "libbarb_crypto.a"
  "libbarb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
