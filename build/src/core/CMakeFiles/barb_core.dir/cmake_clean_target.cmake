file(REMOVE_RECURSE
  "libbarb_core.a"
)
