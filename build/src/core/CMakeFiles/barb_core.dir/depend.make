# Empty dependencies file for barb_core.
# This may be replaced when dependencies are built.
