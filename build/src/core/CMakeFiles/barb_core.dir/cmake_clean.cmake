file(REMOVE_RECURSE
  "CMakeFiles/barb_core.dir/experiments.cc.o"
  "CMakeFiles/barb_core.dir/experiments.cc.o.d"
  "CMakeFiles/barb_core.dir/report.cc.o"
  "CMakeFiles/barb_core.dir/report.cc.o.d"
  "CMakeFiles/barb_core.dir/testbed.cc.o"
  "CMakeFiles/barb_core.dir/testbed.cc.o.d"
  "libbarb_core.a"
  "libbarb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
