// Web-server protection trade-off: what an operator gives up by pushing the
// HTTP allow rule deeper into an ADF policy (the paper's Table 1 scenario,
// including the 31-rule Oracle-style policy it cites as realistic).
//
//   $ ./webserver_protection
#include <cstdio>

#include "core/experiments.h"
#include "util/logging.h"

using namespace barb;
using namespace barb::core;

int main() {
  Logger::instance().set_level(LogLevel::kError);
  MeasurementOptions opt;
  opt.http_duration = sim::Duration::seconds(5);

  std::printf("http_load against an Apache-class server (10 KB page), one\n"
              "connection at a time, 5 s per configuration\n\n");
  std::printf("%-28s %10s %12s %14s\n", "configuration", "fetches/s", "ms/connect",
              "ms/response");

  TestbedConfig baseline;
  const auto base = measure_http_performance(baseline, opt);
  std::printf("%-28s %10.1f %12.2f %14.2f\n", "standard NIC", base.fetches_per_sec,
              base.mean_connect_ms, base.mean_response_ms);

  // The paper notes 3Com's recommended Oracle protection needs >= 31 rules;
  // include that depth alongside the sweep.
  for (int depth : {1, 8, 31, 64}) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kAdf;
    cfg.action_rule_depth = depth;
    const auto p = measure_http_performance(cfg, opt);
    std::printf("ADF, HTTP rule at depth %-4d %10.1f %12.2f %14.2f   (-%.0f%%)\n",
                depth, p.fetches_per_sec, p.mean_connect_ms, p.mean_response_ms,
                (1.0 - p.fetches_per_sec / base.fetches_per_sec) * 100.0);
  }

  TestbedConfig vpg;
  vpg.firewall = FirewallKind::kAdfVpg;
  vpg.action_rule_depth = 1;
  const auto pv = measure_http_performance(vpg, opt);
  std::printf("%-28s %10.1f %12.2f %14.2f   (-%.0f%%)\n", "ADF, HTTP through a VPG",
              pv.fetches_per_sec, pv.mean_connect_ms, pv.mean_response_ms,
              (1.0 - pv.fetches_per_sec / base.fetches_per_sec) * 100.0);

  std::printf("\nOperator guidance from the paper, visible above: keep\n"
              "performance-sensitive services early in the rule-set; budget for\n"
              "the VPG's crypto cost; and remember a realistic policy (>=31\n"
              "rules for the cited Oracle example) already sits in the range\n"
              "where throughput losses are material.\n");
  return 0;
}
