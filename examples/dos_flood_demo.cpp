// Denial-of-service demo: watch an EFW-protected host lose its bandwidth as
// the attacker ramps up a packet flood — the paper's headline result, live.
//
//   $ ./dos_flood_demo [rule_depth]
//
// Builds the full Figure-1 testbed (policy server, attacker, client,
// target + switch), starts iperf between client and target, and steps the
// flood rate up every two simulated seconds while printing the measured
// bandwidth.
#include <cstdio>
#include <cstdlib>

#include "apps/flood_generator.h"
#include "apps/iperf.h"
#include "core/testbed.h"
#include "util/logging.h"

using namespace barb;
using namespace barb::core;

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kError);
  const int depth = argc > 1 ? std::atoi(argv[1]) : 1;

  sim::Simulation sim(7);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = depth;
  Testbed tb(sim, cfg);

  std::printf("EFW target, %d-rule policy (flood allowed by the action rule)\n\n",
              depth);
  std::printf("%-18s %-18s %-12s %-14s\n", "flood rate (pps)", "bandwidth (Mbps)",
              "NIC drops", "CPU util");

  apps::IperfServer server(tb.target());
  server.start();

  apps::FloodConfig flood_cfg;
  flood_cfg.target = tb.addresses().target;
  flood_cfg.target_port = kFloodPort;
  flood_cfg.rate_pps = 1;  // effectively off
  apps::FloodGenerator flood(tb.attacker(), flood_cfg);
  flood.start();

  std::uint64_t drops_before = 0;
  sim::Duration busy_before;
  for (double rate : {0.0, 5000.0, 15000.0, 25000.0, 35000.0, 40000.0, 45000.0,
                      50000.0}) {
    if (rate > 0) flood.set_rate(rate);
    sim.run_for(sim::Duration::milliseconds(300));  // settle

    apps::IperfClient client(tb.client(), tb.addresses().target);
    double mbps = 0;
    bool done = false;
    const auto window = sim::Duration::seconds(2);
    client.run(apps::IperfClient::Mode::kTcp, window, [&](apps::IperfResult r) {
      mbps = r.completed ? r.mbps : 0.0;
      done = true;
    });
    sim.run_for(window + sim::Duration::seconds(1));
    if (!done) client.cancel();
    sim.run_for(sim::Duration::milliseconds(10));

    const auto& fw = tb.target_firewall()->fw_stats();
    const auto window_s = (window + sim::Duration::milliseconds(1300)).to_seconds();
    const double util =
        (fw.cpu_busy - busy_before).to_seconds() / window_s * 100.0;
    std::printf("%-18.0f %-18.1f %-12llu %.0f%%\n", rate, mbps,
                static_cast<unsigned long long>(fw.rx_ring_drops - drops_before),
                util);
    drops_before = fw.rx_ring_drops;
    busy_before = fw.cpu_busy;
  }

  std::printf("\nThe card's embedded CPU saturates around 45 kpps — 30%% of the\n"
              "100 Mbps maximum frame rate — and legitimate traffic starves,\n"
              "exactly the vulnerability the paper reports. Try\n"
              "  ./dos_flood_demo 64\n"
              "to see the collapse arrive at a far lower flood rate.\n");
  return 0;
}
