// Quickstart: build a two-host network with an EFW-protected server, write a
// policy in the DSL, and exchange traffic through the firewall.
//
//   $ ./quickstart
//
// Walks through the core public API: Simulation, Link, Host, FirewallNic,
// parse_policy, UDP sockets, and TCP connections.
#include <cstdio>
#include <memory>

#include "firewall/nic_firewall.h"
#include "firewall/policy.h"
#include "firewall/profiles.h"
#include "link/link.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/tcp.h"
#include "stack/udp.h"

using namespace barb;

int main() {
  // 1. A simulation context: deterministic clock, scheduler, RNG.
  sim::Simulation sim(/*seed=*/42);

  // 2. A full-duplex 100 Mbps Ethernet link.
  link::Link wire(sim);

  // 3. Two hosts. The client has a plain NIC; the server's NIC is a 3Com
  //    EFW model (embedded firewall on the card).
  stack::Host client(sim, "client", net::Ipv4Address(10, 0, 0, 1),
                     std::make_unique<stack::StandardNic>(
                         sim, net::MacAddress::from_host_id(1), "client/nic"));
  auto efw_nic = std::make_unique<firewall::FirewallNic>(
      sim, net::MacAddress::from_host_id(2), "server/efw", firewall::efw_profile());
  firewall::FirewallNic* efw = efw_nic.get();
  stack::Host server(sim, "server", net::Ipv4Address(10, 0, 0, 2),
                     std::move(efw_nic));

  client.nic().attach(wire.a());
  server.nic().attach(wire.b());
  client.arp().add(server.ip(), server.mac());
  server.arp().add(client.ip(), client.mac());

  // 4. Write a policy in the DSL and install it on the card.
  const char* policy_text =
      "# server policy: web and a udp echo service, everything else denied\n"
      "default deny\n"
      "allow tcp from any to 10.0.0.2 port 80\n"
      "allow udp from any to 10.0.0.2 port 7\n";
  auto policy = firewall::parse_policy(policy_text);
  if (!policy.ok()) {
    std::printf("policy error at line %d: %s\n", policy.error->line,
                policy.error->message.c_str());
    return 1;
  }
  efw->install_rule_set(std::move(*policy.rule_set));
  std::printf("installed policy:\n%s\n", efw->rule_set().to_string().c_str());

  // 5. A UDP echo service on the allowed port...
  auto* echo = server.udp_open(7);
  echo->set_receiver([echo](net::Ipv4Address src, std::uint16_t port,
                            std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> reply(data.begin(), data.end());
    echo->send_to(src, port, reply);
  });

  // ...and a client socket that talks to it, plus one to a denied port.
  auto* sock = client.udp_open(0);
  sock->set_receiver([](net::Ipv4Address, std::uint16_t,
                        std::span<const std::uint8_t> data) {
    std::printf("client <- echo reply: \"%.*s\"\n", static_cast<int>(data.size()),
                reinterpret_cast<const char*>(data.data()));
  });
  const std::string hello = "hello through the firewall";
  sock->send_to(server.ip(), 7,
                {reinterpret_cast<const std::uint8_t*>(hello.data()), hello.size()});
  sock->send_to(server.ip(), 9999,
                {reinterpret_cast<const std::uint8_t*>(hello.data()), hello.size()});

  // 6. A TCP connection to the allowed web port.
  server.tcp_listen(80, [](std::shared_ptr<stack::TcpConnection> conn) {
    conn->on_data = [conn](std::span<const std::uint8_t>) {
      const std::string response = "HTTP/1.0 200 OK\r\n\r\nhi";
      conn->send({reinterpret_cast<const std::uint8_t*>(response.data()),
                  response.size()});
      conn->close();
    };
  });
  auto conn = client.tcp_connect(server.ip(), 80);
  conn->on_connected = [conn] {
    std::printf("client: TCP connected to :80 through the EFW\n");
    const std::string request = "GET / HTTP/1.0\r\n\r\n";
    conn->send({reinterpret_cast<const std::uint8_t*>(request.data()),
                request.size()});
  };
  conn->on_data = [](std::span<const std::uint8_t> data) {
    std::printf("client <- server: %.*s\n", static_cast<int>(data.size()),
                reinterpret_cast<const char*>(data.data()));
  };

  // 7. Run the simulation to completion.
  sim.run();

  const auto& fw = efw->fw_stats();
  std::printf("\nfirewall: %llu frames processed, %llu allowed in, %llu denied in\n",
              static_cast<unsigned long long>(fw.frames_processed),
              static_cast<unsigned long long>(fw.rx_allowed),
              static_cast<unsigned long long>(fw.rx_denied));
  std::printf("simulated time: %s, events: %llu\n", sim.now().to_string().c_str(),
              static_cast<unsigned long long>(sim.events_executed()));
  return 0;
}
