// barbsim: command-line driver for the validation methodology — run any of
// the paper's experiments against any device configuration without writing
// code.
//
//   $ ./barbsim --firewall efw --depth 64 --experiment bandwidth
//   $ ./barbsim --firewall adf --depth 32 --experiment flood --flood-rate 30000
//   $ ./barbsim --firewall adf --depth 64 --experiment minflood --flood-type data
//   $ ./barbsim --firewall adf-vpg --depth 2 --experiment http
//   $ ./barbsim --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "apps/ping.h"
#include "core/experiments.h"
#include "util/logging.h"

using namespace barb;
using namespace barb::core;

namespace {

void usage() {
  std::printf(
      "barbsim — NIC-firewall flood-tolerance experiments\n\n"
      "  --experiment bandwidth|flood|minflood|http|ping  (default bandwidth)\n"
      "  --firewall none|iptables|efw|adf|adf-vpg     (default efw)\n"
      "  --depth N          action rule depth / VPG count (default 1)\n"
      "  --deny             deny the flood at the action rule (default allow)\n"
      "  --flood-rate R     packets/s for --experiment flood (default 30000)\n"
      "  --flood-type udp|syn|data                    (default udp)\n"
      "  --spoof            randomize flood source addresses\n"
      "  --frame-size B     flood frame size in bytes (default 60)\n"
      "  --window S         measurement window seconds (default 2)\n"
      "  --reps N           repetitions per point (default 3)\n"
      "  --seed S           simulation seed (default 1)\n"
      "  --managed          distribute policy via the policy server\n");
}

std::optional<FirewallKind> parse_firewall(const std::string& name) {
  if (name == "none") return FirewallKind::kNone;
  if (name == "iptables") return FirewallKind::kIptables;
  if (name == "efw") return FirewallKind::kEfw;
  if (name == "adf") return FirewallKind::kAdf;
  if (name == "adf-vpg") return FirewallKind::kAdfVpg;
  return std::nullopt;
}

std::optional<apps::FloodType> parse_flood_type(const std::string& name) {
  if (name == "udp") return apps::FloodType::kUdp;
  if (name == "syn") return apps::FloodType::kTcpSyn;
  if (name == "data") return apps::FloodType::kTcpData;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kError);

  std::string experiment = "bandwidth";
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  MeasurementOptions opt;
  FloodSpec flood;
  flood.rate_pps = 30000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--experiment") {
      experiment = next();
    } else if (arg == "--firewall") {
      auto kind = parse_firewall(next());
      if (!kind) {
        std::fprintf(stderr, "unknown firewall\n");
        return 2;
      }
      cfg.firewall = *kind;
    } else if (arg == "--depth") {
      cfg.action_rule_depth = std::atoi(next());
    } else if (arg == "--deny") {
      cfg.flood_action = firewall::RuleAction::kDeny;
    } else if (arg == "--managed") {
      cfg.use_policy_server = true;
    } else if (arg == "--flood-rate") {
      flood.rate_pps = std::atof(next());
    } else if (arg == "--flood-type") {
      auto type = parse_flood_type(next());
      if (!type) {
        std::fprintf(stderr, "unknown flood type\n");
        return 2;
      }
      flood.type = *type;
    } else if (arg == "--spoof") {
      flood.spoof_source = true;
    } else if (arg == "--frame-size") {
      flood.frame_size = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--window") {
      opt.window = sim::Duration::from_seconds(std::atof(next()));
    } else if (arg == "--reps") {
      opt.repetitions = std::atoi(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::printf("firewall=%s depth=%d flood_action=%s seed=%llu\n",
              to_string(cfg.firewall), cfg.action_rule_depth,
              firewall::to_string(cfg.flood_action),
              static_cast<unsigned long long>(opt.seed));

  if (experiment == "bandwidth") {
    const auto p = measure_available_bandwidth(cfg, opt);
    std::printf("available bandwidth: %.1f Mbps (stddev %.2f over %zu reps)\n",
                p.mean(), p.stddev(), p.mbps.count());
  } else if (experiment == "flood") {
    const auto p = measure_bandwidth_under_flood(cfg, flood, opt);
    std::printf("bandwidth under %.0f pps flood: %.1f Mbps\n", flood.rate_pps,
                p.mean());
  } else if (experiment == "minflood") {
    const auto r = find_min_dos_flood_rate(cfg, flood, opt);
    if (r.rate_pps) {
      std::printf("minimum DoS flood rate: %.0f pps%s (%d probes)\n", *r.rate_pps,
                  r.lockup_observed ? " [card locked up during search]" : "",
                  r.probes);
    } else {
      std::printf("no flood rate up to the search limit causes DoS (%d probes)\n",
                  r.probes);
    }
  } else if (experiment == "ping") {
    sim::Simulation sim(opt.seed);
    Testbed tb(sim, cfg);
    apps::PingClient ping(tb.client(), tb.addresses().target);
    apps::PingResult result;
    ping.run(20, [&](apps::PingResult r) { result = r; });
    tb.settle();
    sim.run_for(sim::Duration::seconds(30));
    std::printf("ping: %llu/%llu replies, rtt min/mean/max = %.3f/%.3f/%.3f ms\n",
                static_cast<unsigned long long>(result.received),
                static_cast<unsigned long long>(result.sent), result.min_rtt_ms,
                result.mean_rtt_ms, result.max_rtt_ms);
  } else if (experiment == "http") {
    const auto p = measure_http_performance(cfg, opt);
    std::printf("http: %.1f fetches/s, %.2f ms connect, %.2f ms response, "
                "%llu errors\n",
                p.fetches_per_sec, p.mean_connect_ms, p.mean_response_ms,
                static_cast<unsigned long long>(p.errors));
  } else {
    std::fprintf(stderr, "unknown experiment (try --help)\n");
    return 2;
  }
  return 0;
}
