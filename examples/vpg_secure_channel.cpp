// Virtual Private Group demo: transparent NIC-to-NIC encryption between two
// ADF cards, with an on-path eavesdropper showing what the wire actually
// carries — and what happens to tampered or replayed frames.
//
//   $ ./vpg_secure_channel
#include <cstdio>
#include <string>

#include "core/testbed.h"
#include "link/tracer.h"
#include "stack/tcp.h"
#include "util/byte_io.h"
#include "util/logging.h"

using namespace barb;
using namespace barb::core;

namespace {

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kError);
  sim::Simulation sim(5);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdfVpg;
  cfg.action_rule_depth = 1;
  Testbed tb(sim, cfg);

  // Splice a frame tap between the wire and the target's ADF card.
  link::FrameTap tap(&tb.target().nic());
  tb.target().nic().port()->connect_sink(&tap);

  std::printf("client and target each carry an ADF; policy: one VPG between\n"
              "10.0.0.30 and 10.0.0.40 (keys provisioned per group)\n\n");

  const std::string secret = "TOP-SECRET: the barbarians are inside the gate";
  std::string received;
  tb.target().tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> data) {
      received.assign(data.begin(), data.end());
    };
  });
  auto conn = tb.client().tcp_connect(tb.addresses().target, 5001);
  conn->on_connected = [&] {
    conn->send({reinterpret_cast<const std::uint8_t*>(secret.data()), secret.size()});
  };
  sim.run_for(sim::Duration::seconds(1));

  std::printf("application received: \"%s\"\n\n", received.c_str());

  // What did the eavesdropper see?
  std::size_t vpg_frames = 0;
  bool plaintext_on_wire = false;
  for (const auto& frame : tap.frames()) {
    auto view = net::FrameView::parse(frame.data);
    if (view && view->vpg) ++vpg_frames;
    const std::string raw(frame.data.begin(), frame.data.end());
    if (raw.find("TOP-SECRET") != std::string::npos) plaintext_on_wire = true;
  }
  std::printf("eavesdropper captured %zu frames toward the target; %zu were\n"
              "VPG-encapsulated (IP protocol 250). plaintext visible on the\n"
              "wire: %s\n",
              tap.frames().size(), vpg_frames, plaintext_on_wire ? "YES" : "NO");
  if (!tap.frames().empty()) {
    const auto& sample = tap.frames().back();
    const auto head = std::span(sample.data).first(std::min<std::size_t>(48, sample.data.size()));
    std::printf("first bytes of a captured frame: %s...\n\n",
                to_hex(head).c_str());
  }

  // Active attacks: replay a captured VPG frame and inject a tampered one.
  // The capture is a real pcap: open it in Wireshark.
  if (tap.write_pcap("vpg_capture.pcap")) {
    std::printf("wrote vpg_capture.pcap (%zu frames, LINKTYPE_ETHERNET)\n\n",
                tap.frames().size());
  }

  const auto& vpg_stats_before = tb.target_firewall()->vpg_table().stats();
  const auto replays_before = vpg_stats_before.replays_dropped;
  const auto auth_before = vpg_stats_before.auth_failures;
  for (const auto& frame : tap.frames()) {
    auto view = net::FrameView::parse(frame.data);
    if (!view || !view->vpg) continue;
    // Replay verbatim.
    tb.attacker().nic().transmit(net::Packet{frame.data, sim.now(), 0});
    // Replay with one flipped ciphertext bit.
    auto tampered = frame.data;
    tampered.back() ^= 0x01;
    tb.attacker().nic().transmit(net::Packet{std::move(tampered), sim.now(), 0});
  }
  sim.run_for(sim::Duration::seconds(1));
  const auto& vpg_stats = tb.target_firewall()->vpg_table().stats();
  std::printf("active attack results at the target's ADF:\n");
  std::printf("  replayed frames dropped:  %llu\n",
              static_cast<unsigned long long>(vpg_stats.replays_dropped - replays_before));
  std::printf("  tampered frames rejected: %llu\n",
              static_cast<unsigned long long>(vpg_stats.auth_failures - auth_before));
  std::printf("\nConfidentiality, integrity, and replay protection hold on the\n"
              "wire — at the bandwidth cost Figure 2 and Table 1 quantify.\n");
  return 0;
}
