// Central policy management demo: the distributed-firewall architecture in
// action — a policy server pushing authenticated rule-sets to firewall
// agents, live policy updates, heartbeat monitoring, and the EFW deny-flood
// lockup with its console recovery.
//
//   $ ./policy_distribution
#include <cstdio>

#include "apps/flood_generator.h"
#include "core/testbed.h"
#include "util/logging.h"

using namespace barb;
using namespace barb::core;

namespace {

void show_agents(Testbed& tb) {
  for (const auto& [ip, status] : tb.policy_server()->agents()) {
    std::printf("  agent %-10s connected=%d acked_version=%llu heartbeats=%llu%s\n",
                ip.to_string().c_str(), status.connected,
                static_cast<unsigned long long>(status.acked_version),
                static_cast<unsigned long long>(status.heartbeats),
                status.reported_locked ? " [REPORTED LOCKED]" : "");
  }
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kError);
  sim::Simulation sim(11);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 4;
  cfg.use_policy_server = true;  // distribute through the management plane
  Testbed tb(sim, cfg);

  std::printf("== enrollment ==\n");
  tb.settle();
  show_agents(tb);
  std::printf("target's installed policy (version %llu):\n%s\n",
              static_cast<unsigned long long>(
                  tb.target_agent()->stats().last_version),
              tb.target_firewall()->rule_set().to_string().c_str());

  std::printf("== live policy update ==\n");
  tb.policy_server()->set_policy(
      tb.addresses().target,
      "default deny\n"
      "deny any from 10.0.0.20 to 10.0.0.40\n"  // block the attacker
      "allow any from any to any\n");
  sim.run_for(sim::Duration::milliseconds(200));
  std::printf("new policy applied (version %llu), %llu policies total\n\n",
              static_cast<unsigned long long>(
                  tb.target_agent()->stats().last_version),
              static_cast<unsigned long long>(
                  tb.target_agent()->stats().policies_applied));

  std::printf("== attacker floods the (now denied) target ==\n");
  apps::FloodConfig flood_cfg;
  flood_cfg.target = tb.addresses().target;
  flood_cfg.target_port = kFloodPort;
  flood_cfg.type = apps::FloodType::kTcpData;
  flood_cfg.rate_pps = 3000;  // well above the EFW's ~1000/s deny tolerance
  apps::FloodGenerator flood(tb.attacker(), flood_cfg);
  flood.start();
  sim.run_for(sim::Duration::seconds(2));
  flood.stop();

  std::printf("card locked up: %s (denied-flood firmware fault)\n",
              tb.target_firewall()->locked_up() ? "YES" : "no");
  sim.run_for(sim::Duration::seconds(3));
  std::printf("heartbeats while locked (management traffic dies with the card):\n");
  show_agents(tb);

  std::printf("\n== recovery: restart the firewall agent at the console ==\n");
  tb.target_firewall()->restart();
  sim.run_for(sim::Duration::seconds(3));
  std::printf("locked=%s, heartbeats flowing again:\n",
              tb.target_firewall()->locked_up() ? "YES" : "no");
  show_agents(tb);

  std::printf("\nThis is the paper's observed failure and recovery: a denied\n"
              "flood above ~1000 pps stops the EFW entirely, and only a local\n"
              "agent restart restores it — no remote fix exists because the\n"
              "locked card drops the management channel too.\n");
  return 0;
}
